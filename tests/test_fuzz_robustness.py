"""Fuzz tests: corrupted inputs degrade gracefully, never with a traceback.

Two attack surfaces, matching how bad data actually reaches the system:

* *scheme ingestion* — garbage identifiers, mangled hyperparameter dicts and
  oversized chains must surface as ``ValueError``/``KeyError``/
  ``SchemeRejected`` (the documented rejection channels), never as an
  ``AttributeError``/``TypeError``/``IndexError`` escaping the parser or
  linter;
* *journal ingestion* — arbitrary bytes, truncations and type-confused JSON
  records must leave :func:`read_journal`/:func:`summarize_journal` standing
  (corruption is counted and skipped — the schema's forward-compatibility
  contract).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import SchemeRejected, lint_scheme
from repro.space import CompressionScheme, StrategySpace
from repro.space.hyperparams import HP_GRID, METHOD_HPS
from repro.space.strategy import make_strategy
from repro.obs import RunJournal, read_journal, summarize_journal

SPACE = StrategySpace()

#: the only exception types the scheme-ingestion layer may raise
INGESTION_ERRORS = (ValueError, KeyError, SchemeRejected)


# --------------------------------------------------------------------------- #
class TestSchemeFuzz:
    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=60))
    def test_parse_scheme_never_crashes(self, text):
        try:
            scheme = SPACE.parse_scheme(text)
        except INGESTION_ERRORS:
            return
        # parse succeeded: the result must round-trip through its identifier
        assert SPACE.parse_scheme(scheme.identifier).identifier == scheme.identifier

    @settings(max_examples=100, deadline=None)
    @given(
        label=st.one_of(
            st.sampled_from(sorted(METHOD_HPS)), st.text(max_size=5)
        ),
        hp=st.dictionaries(
            st.one_of(st.sampled_from(sorted(HP_GRID)), st.text(max_size=4)),
            st.one_of(
                st.floats(allow_nan=True, allow_infinity=True),
                st.integers(),
                st.text(max_size=6),
                st.none(),
                st.lists(st.integers(), max_size=2),
            ),
            max_size=6,
        ),
    )
    def test_make_strategy_rejects_or_builds(self, label, hp):
        """Mangled hp dicts either build a strategy or raise a typed error."""
        try:
            strategy = make_strategy(label, hp)
        except INGESTION_ERRORS:
            return
        assert strategy.method_label == label
        # every expected hyperparameter made it through, in canonical order
        assert [name for name, _ in strategy.hp_items] == list(METHOD_HPS[label])

    @settings(max_examples=50, deadline=None)
    @given(
        indices=st.lists(st.integers(0, len(SPACE) - 1), min_size=1, max_size=8)
    )
    def test_lint_scheme_always_returns_report(self, indices):
        """Any chain of in-space strategies lints without raising."""
        scheme = CompressionScheme(tuple(SPACE[i] for i in indices))
        report = lint_scheme(scheme)
        assert report.subject == scheme.identifier
        if scheme.length > 5:
            assert "L006" in report.rules()

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_evaluator_lint_raises_only_scheme_rejected(self, data, shared_surrogate):
        """The evaluator's gate rejects bad schemes via SchemeRejected only."""
        indices = data.draw(
            st.lists(st.integers(0, len(SPACE) - 1), min_size=6, max_size=9)
        )
        doomed = CompressionScheme(tuple(SPACE[i] for i in indices))
        before = (shared_surrogate.total_cost, shared_surrogate.evaluation_count)
        with pytest.raises(SchemeRejected):
            shared_surrogate.evaluate(doomed)
        assert (shared_surrogate.total_cost, shared_surrogate.evaluation_count) == before


@pytest.fixture(scope="module")
def shared_surrogate():
    from repro.core import EvaluatorConfig, SurrogateEvaluator
    from repro.data.tasks import EXP1, transfer_task
    from repro.models import resnet20

    task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
    return SurrogateEvaluator(
        lambda: resnet20(num_classes=10), "resnet20", "cifar10", task,
        config=EvaluatorConfig(seed=0),
    )


# --------------------------------------------------------------------------- #
class TestJournalFuzz:
    @settings(max_examples=60, deadline=None)
    @given(garbage=st.binary(max_size=400))
    def test_arbitrary_bytes_never_crash_the_reader(self, garbage, tmp_path_factory):
        path = tmp_path_factory.mktemp("fuzz") / "garbage.jsonl"
        path.write_bytes(garbage)
        records = list(read_journal(path))
        summary = summarize_journal(path)
        assert summary.records == len(records)
        assert summary.sim_cost_total >= 0.0

    @settings(max_examples=60, deadline=None)
    @given(
        records=st.lists(
            st.one_of(
                # type-confused but parseable JSON values
                st.integers(),
                st.lists(st.integers(), max_size=3),
                st.text(max_size=10),
                st.dictionaries(st.text(max_size=6), st.integers(), max_size=3),
                # records with the right type but wrong field types
                st.fixed_dictionaries(
                    {
                        "type": st.sampled_from(["span", "event", "meta", "new_kind"]),
                        "name": st.one_of(st.text(max_size=8), st.integers(), st.none()),
                        "dur": st.one_of(st.floats(allow_nan=False), st.text(max_size=3)),
                        "cost": st.one_of(st.floats(allow_nan=False), st.none()),
                        "attrs": st.one_of(st.dictionaries(st.text(max_size=4), st.integers(), max_size=2), st.integers()),
                    }
                ),
            ),
            max_size=15,
        )
    )
    def test_type_confused_records_are_tolerated(self, records, tmp_path_factory):
        path = tmp_path_factory.mktemp("fuzz") / "confused.jsonl"
        with open(path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        summary = summarize_journal(path)
        assert summary.records + summary.skipped_lines <= len(records)
        assert summary.fresh_evaluations >= 0

    @settings(max_examples=40, deadline=None)
    @given(cut=st.integers(0, 400), seed=st.integers(0, 10))
    def test_truncation_at_any_byte_degrades_gracefully(
        self, cut, seed, tmp_path_factory
    ):
        """A journal chopped at any byte offset still summarises."""
        root = tmp_path_factory.mktemp("fuzz")
        path = root / "full.jsonl"
        with RunJournal(path, run={"seed": seed}) as journal:
            for i in range(3):
                journal.write(
                    {"type": "span", "name": "evaluate", "id": i + 1,
                     "parent": None, "t": 0.0, "dur": 0.01, "cost": 0.125,
                     "attrs": {"scheme": f"s{i}"}}
                )
        data = path.read_bytes()
        cut_path = root / "cut.jsonl"
        cut_path.write_bytes(data[: min(cut, len(data))])
        summary = summarize_journal(cut_path)
        assert 0 <= summary.fresh_evaluations <= 3
        assert summary.sim_cost_total == pytest.approx(
            0.125 * summary.fresh_evaluations
        )
        assert summary.skipped_lines <= 1  # at most the chopped final line

    def test_summarize_missing_file_raises_oserror_only(self, tmp_path):
        with pytest.raises(OSError):
            summarize_journal(tmp_path / "does-not-exist.jsonl")


# --------------------------------------------------------------------------- #
class TestJournalEdgeCaseRegressions:
    """Crash-adjacent journals through both the API and the CLI.

    A daemon killed mid-write leaves behind either an empty journal (opened
    but never flushed) or one whose final line is chopped mid-record; both
    must summarise cleanly and render without placeholder artifacts like
    ``schema vNone``, and ``repro trace summarize`` must exit 2 — never
    traceback — on unreadable paths.
    """

    def test_empty_journal_summarizes_and_formats(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_bytes(b"")
        summary = summarize_journal(path)
        assert summary.records == 0
        assert summary.skipped_lines == 0
        assert summary.schema is None
        text = summary.format()
        assert "schema unknown" in text
        assert "empty journal" in text
        assert "vNone" not in text

    def test_crash_truncated_final_line_keeps_complete_records(self, tmp_path):
        path = tmp_path / "full.jsonl"
        with RunJournal(path, run={"solver": "random"}) as journal:
            for i in range(3):
                journal.write(
                    {"type": "span", "name": "evaluate", "id": i + 1,
                     "parent": None, "t": 0.0, "dur": 0.01, "cost": 0.125,
                     "attrs": {"scheme": f"s{i}"}}
                )
        data = path.read_bytes()
        # chop mid-way through the final record, crash-style
        cut_path = tmp_path / "cut.jsonl"
        cut_path.write_bytes(data[: len(data) - 10])
        summary = summarize_journal(cut_path)
        # header + two complete evaluate spans survive; the torn line is counted
        assert summary.schema is not None
        assert summary.fresh_evaluations == 2
        assert summary.sim_cost_total == pytest.approx(0.25)
        assert summary.skipped_lines == 1
        text = summary.format()
        assert "1 unparseable lines skipped" in text
        assert "vNone" not in text

    def test_cli_summarize_empty_journal_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "empty.jsonl"
        path.write_bytes(b"")
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "empty journal" in out
        assert "schema unknown" in out

    def test_cli_summarize_directory_exits_two(self, tmp_path, capsys):
        """Regression: a directory path raised IsADirectoryError uncaught."""
        from repro.cli import main

        assert main(["trace", "summarize", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "cannot read journal" in err

    def test_cli_summarize_missing_file_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert capsys.readouterr().err
