"""Smoke checks for the runnable examples.

Full example runs take minutes (they train for real), so the suite verifies
that each example compiles, exposes a ``main``, and that the cheapest one
executes end to end.
"""

import importlib.util
import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_defines_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None))


def test_examples_cover_required_scenarios():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # quickstart + >= 2 domain scenarios
