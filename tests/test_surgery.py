"""Tests for structural surgery: invariants that pruning must preserve."""

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.surgery import (
    SurgeryError,
    bn_scale_magnitudes,
    execute_plan,
    filter_l1_norms,
    filter_l2_norms,
    params_per_channel,
    plan_global_pruning,
    prune_by_scores,
    prune_unit,
    uniform_width_scale,
)
from repro.models import resnet8, vgg8_tiny
from repro.nn import Tensor, profile_model


def _forward_ok(model, size=8):
    out = model(Tensor(np.random.default_rng(0).normal(size=(2, 3, size, size))))
    assert np.isfinite(out.data).all()
    return out


class TestPruneUnit:
    def test_removes_channels_everywhere(self, trained_resnet8):
        model = copy.deepcopy(trained_resnet8)
        unit = model.pruning_units()[0]
        before = unit.out_channels
        keep = np.arange(before // 2)
        prune_unit(unit, keep)
        assert unit.producer.out_channels == before // 2
        assert unit.bn.num_features == before // 2
        assert unit.consumers[0].in_channels == before // 2
        _forward_ok(model)

    def test_refuses_empty_keep(self, trained_resnet8):
        model = copy.deepcopy(trained_resnet8)
        unit = model.pruning_units()[0]
        with pytest.raises(SurgeryError):
            prune_unit(unit, np.array([], dtype=np.int64))

    def test_keeps_correct_filters(self, trained_resnet8):
        model = copy.deepcopy(trained_resnet8)
        unit = model.pruning_units()[0]
        original = unit.producer.weight.data.copy()
        keep = np.array([0, 2])
        prune_unit(unit, keep)
        np.testing.assert_allclose(unit.producer.weight.data, original[[0, 2]])

    def test_equivalent_output_when_pruning_dead_channels(self, trained_vgg8):
        """Pruning channels whose filters are zero must not change outputs."""
        model = copy.deepcopy(trained_vgg8)
        model.eval()
        unit = model.pruning_units()[0]
        dead = np.array([1, 3])
        unit.producer.weight.data[dead] = 0.0
        unit.bn.gamma.data[dead] = 0.0
        unit.bn.beta.data[dead] = 0.0
        unit.bn.running_mean[dead] = 0.0
        unit.bn.running_var[dead] = 1.0
        x = np.random.default_rng(1).normal(size=(2, 3, 8, 8))
        before = model(Tensor(x)).data.copy()
        keep = np.setdiff1d(np.arange(unit.out_channels), dead)
        prune_unit(unit, keep)
        after = model(Tensor(x)).data
        # Pruned channels are exactly zero, but removing them changes the
        # float32 summation order downstream — allow that much noise.
        np.testing.assert_allclose(before, after, atol=1e-6)


class TestGlobalPlanning:
    def test_budget_respected(self, trained_vgg8):
        model = copy.deepcopy(trained_vgg8)
        units = model.pruning_units()
        scores = {u.name: filter_l2_norms(u) for u in units}
        total = model.num_parameters()
        plan = plan_global_pruning(units, scores, param_budget=total // 5)
        assert plan.params_removed >= total // 5 * 0.8  # close to target

    def test_lowest_scores_removed_first(self, trained_vgg8):
        model = copy.deepcopy(trained_vgg8)
        units = model.pruning_units()
        scores = {u.name: np.arange(u.out_channels, dtype=float) for u in units}
        plan = plan_global_pruning(units, scores, param_budget=1)
        # Only the very cheapest/lowest-scoring channels go; all keeps are suffixes.
        for u in units:
            kept = plan.keep[u.name]
            dropped = np.setdiff1d(np.arange(u.out_channels), kept)
            if dropped.size:
                assert dropped.max() < kept.min()

    def test_max_ratio_cap(self, trained_vgg8):
        model = copy.deepcopy(trained_vgg8)
        units = model.pruning_units()
        scores = {u.name: filter_l2_norms(u) for u in units}
        plan = plan_global_pruning(
            units, scores, param_budget=10**9, max_ratio=0.5
        )
        for u in units:
            assert len(plan.keep[u.name]) >= int(np.ceil(u.out_channels * 0.5))

    def test_score_length_mismatch_raises(self, trained_vgg8):
        model = copy.deepcopy(trained_vgg8)
        units = model.pruning_units()
        scores = {u.name: np.ones(3) for u in units}
        with pytest.raises(SurgeryError, match="score length"):
            plan_global_pruning(units, scores, param_budget=10)

    def test_execute_close_to_plan(self, trained_vgg8):
        """Measured removal tracks the plan estimate (chain interactions
        make the estimate an upper bound in VGG topologies)."""
        model = copy.deepcopy(trained_vgg8)
        units = model.pruning_units()
        scores = {u.name: filter_l2_norms(u) for u in units}
        before = model.num_parameters()
        plan = plan_global_pruning(units, scores, param_budget=before // 6)
        execute_plan(units, plan)
        measured = before - model.num_parameters()
        assert 0 < measured <= plan.params_removed
        assert measured >= 0.7 * plan.params_removed
        _forward_ok(model)

    def test_prune_by_scores_iterates_to_budget(self, trained_vgg8):
        model = copy.deepcopy(trained_vgg8)
        before = model.num_parameters()
        budget = before // 6
        scores = {u.name: filter_l2_norms(u) for u in model.pruning_units()}
        removed = prune_by_scores(model, scores, budget)
        assert removed == before - model.num_parameters()
        assert removed >= 0.95 * budget
        _forward_ok(model)


class TestPruneByScores:
    @pytest.mark.parametrize("model_factory", [resnet8, vgg8_tiny])
    def test_param_count_decreases_and_forward_works(self, model_factory):
        model = model_factory(num_classes=4)
        before = model.num_parameters()
        scores = {u.name: filter_l2_norms(u) for u in model.pruning_units()}
        removed = prune_by_scores(model, scores, before // 5)
        assert removed > 0
        assert model.num_parameters() == before - removed
        _forward_ok(model)

    def test_flops_also_decrease(self):
        model = vgg8_tiny(num_classes=4)
        flops_before = profile_model(model, (3, 8, 8)).flops
        scores = {u.name: filter_l2_norms(u) for u in model.pruning_units()}
        prune_by_scores(model, scores, model.num_parameters() // 4)
        assert profile_model(model, (3, 8, 8)).flops < flops_before


class TestScoringCriteria:
    def test_l1_l2_norm_shapes(self, trained_resnet8):
        unit = trained_resnet8.pruning_units()[0]
        assert filter_l1_norms(unit).shape == (unit.out_channels,)
        assert filter_l2_norms(unit).shape == (unit.out_channels,)

    def test_l1_dominates_l2(self, trained_resnet8):
        unit = trained_resnet8.pruning_units()[0]
        assert (filter_l1_norms(unit) >= filter_l2_norms(unit) - 1e-12).all()

    def test_bn_scale_magnitudes(self, trained_resnet8):
        unit = trained_resnet8.pruning_units()[0]
        np.testing.assert_allclose(
            bn_scale_magnitudes(unit), np.abs(unit.bn.gamma.data)
        )


class TestUniformWidthScale:
    def test_hits_budget(self):
        model = vgg8_tiny(num_classes=4)
        before = model.num_parameters()
        budget = before // 4
        removed = uniform_width_scale(model, budget)
        assert removed >= budget * 0.9
        _forward_ok(model)

    def test_params_per_channel_consistent(self):
        """Removing exactly one channel frees params_per_channel params."""
        model = vgg8_tiny(num_classes=4)
        unit = model.pruning_units()[1]
        expected = params_per_channel(unit)
        before = model.num_parameters()
        prune_unit(unit, np.arange(1, unit.out_channels))
        assert before - model.num_parameters() == expected


class TestHypothesisInvariants:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=100))
    def test_random_keep_sets_always_leave_valid_model(self, n_keep, seed):
        model = vgg8_tiny(num_classes=4, seed=seed % 3)
        unit = model.pruning_units()[0]
        rng = np.random.default_rng(seed)
        keep = rng.choice(
            unit.out_channels, size=min(n_keep, unit.out_channels), replace=False
        )
        prune_unit(unit, keep)
        assert unit.producer.out_channels == len(set(keep.tolist()))
        _forward_ok(model)
