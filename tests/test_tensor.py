"""Unit + property tests for the autodiff Tensor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn.tensor import Tensor, concat, stack, where

from .conftest import numeric_gradient

# Central-difference gradient checks need float64 precision.
pytestmark = pytest.mark.usefixtures("float64_gradcheck")


def _finite_arrays(shape=(3, 4)):
    return arrays(
        np.float64,
        shape,
        elements=st.floats(-3, 3, allow_nan=False, allow_infinity=False),
    )


class TestBasics:
    def test_construction_and_shape(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.ndim == 2
        assert t.size == 4
        assert not t.requires_grad

    def test_detach_cuts_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_item_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))


class TestArithmetic:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        np.testing.assert_allclose(b.grad, [1, 1])

    def test_broadcast_add_unbroadcasts_grad(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, [2, 2, 2])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5, 7])
        np.testing.assert_allclose(b.grad, [2, 3])

    def test_div_backward(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_scalar_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_rsub_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        (1.0 - a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0])
        a.zero_grad()
        (4.0 / a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0])

    def test_matmul_backward_matches_numeric(self, rng):
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4, 2))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        ((a @ b) ** 2).sum().backward()

        num_a = numeric_gradient(lambda: float(((a_data @ b_data) ** 2).sum()), a_data)
        num_b = numeric_gradient(lambda: float(((a_data @ b_data) ** 2).sum()), b_data)
        np.testing.assert_allclose(a.grad, num_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, num_b, atol=1e-5)


class TestElementwise:
    @pytest.mark.parametrize(
        "op, reference_grad",
        [
            ("exp", lambda x: np.exp(x)),
            ("tanh", lambda x: 1 - np.tanh(x) ** 2),
            ("sigmoid", lambda x: (1 / (1 + np.exp(-x))) * (1 - 1 / (1 + np.exp(-x)))),
            ("relu", lambda x: (x > 0).astype(float)),
            ("abs", lambda x: np.sign(x)),
        ],
    )
    def test_unary_gradients(self, op, reference_grad, rng):
        x_data = rng.normal(size=(5,))
        x = Tensor(x_data, requires_grad=True)
        getattr(x, op)().sum().backward()
        np.testing.assert_allclose(x.grad, reference_grad(x_data), atol=1e-10)

    def test_log_sqrt_gradients(self):
        x = Tensor([1.0, 4.0], requires_grad=True)
        x.log().sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 0.25])
        x.zero_grad()
        x.sqrt().sum().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.25])

    def test_clip_gradient_masks_out_of_range(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        x.clip(-1, 1).sum().backward()
        np.testing.assert_allclose(x.grad, [0, 1, 0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_mean_gradient_scales(self):
        x = Tensor(np.ones((2, 4)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 4), 1 / 8))

    def test_var_matches_numpy(self, rng):
        data = rng.normal(size=(3, 5))
        np.testing.assert_allclose(
            Tensor(data).var(axis=1).data, data.var(axis=1), atol=1e-12
        )

    def test_max_gradient_splits_ties(self):
        x = Tensor([[1.0, 2.0, 2.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 0.5, 0.5]])


class TestShapes:
    def test_reshape_roundtrip_grad(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(6))

    def test_transpose_grad(self, rng):
        data = rng.normal(size=(2, 3, 4))
        x = Tensor(data, requires_grad=True)
        (x.transpose(2, 0, 1) * 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(data.shape, 2.0))

    def test_getitem_scatter_grad(self):
        x = Tensor(np.zeros(5), requires_grad=True)
        x[np.array([0, 0, 3])].sum().backward()
        np.testing.assert_allclose(x.grad, [2, 0, 0, 1, 0])

    def test_pad2d_grad(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        out = x.pad2d(1)
        assert out.shape == (1, 1, 4, 4)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((1, 1, 2, 2)))

    def test_concat_and_stack_grads(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        concat([a, b]).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        np.testing.assert_allclose(b.grad, [1])

        c = Tensor([1.0, 2.0], requires_grad=True)
        d = Tensor([3.0, 4.0], requires_grad=True)
        (stack([c, d]) * 3).sum().backward()
        np.testing.assert_allclose(c.grad, [3, 3])
        np.testing.assert_allclose(d.grad, [3, 3])

    def test_where_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        where(np.array([True, False]), a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 0])
        np.testing.assert_allclose(b.grad, [0, 1])


class TestBackwardMechanics:
    def test_grad_accumulates_over_reuse(self):
        x = Tensor([2.0], requires_grad=True)
        (x * x).sum().backward()  # d(x^2)/dx = 2x = 4
        np.testing.assert_allclose(x.grad, [4.0])

    def test_diamond_graph(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2
        b = x * 3
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_deep_chain_does_not_recurse(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(2000):  # would overflow a recursive backward
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_no_grad_on_constant_branch(self):
        x = Tensor([1.0], requires_grad=True)
        c = Tensor([2.0])
        (x * c).sum().backward()
        assert c.grad is None


class TestHypothesisGradients:
    @settings(max_examples=25, deadline=None)
    @given(_finite_arrays())
    def test_sum_of_squares_gradient(self, data):
        x = Tensor(data.copy(), requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * data, atol=1e-8)

    @settings(max_examples=25, deadline=None)
    @given(_finite_arrays((2, 3)), _finite_arrays((2, 3)))
    def test_addition_commutes_through_grad(self, a_data, b_data):
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        ((a + b) * (a + b)).sum().backward()
        np.testing.assert_allclose(a.grad, b.grad, atol=1e-8)

    @settings(max_examples=20, deadline=None)
    @given(
        arrays(
            np.float64,
            array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
            elements=st.floats(-2, 2, allow_nan=False, allow_infinity=False),
        )
    )
    def test_mean_grad_sums_to_one(self, data):
        x = Tensor(data.copy(), requires_grad=True)
        x.mean().backward()
        assert x.grad.sum() == pytest.approx(1.0, abs=1e-9)
