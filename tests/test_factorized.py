"""Tests for TuckerConv2d / BasisConv2d and module replacement."""


import numpy as np
import pytest

from repro.compression.factorized import (
    BasisConv2d,
    TuckerConv2d,
    conv_like_modules,
    replace_module,
)
from repro.compression.hooi import tucker2
from repro.models import vgg8_tiny
from repro.nn import Tensor
from repro.nn import functional as F

# Factorised-vs-dense equivalence is asserted to ~1e-8, beyond float32.
pytestmark = pytest.mark.usefixtures("float64_gradcheck")


class TestTuckerConv2d:
    def _build(self, rng, ranks=(4, 3), channels=(5, 8), stride=1, padding=1):
        c, f = channels
        w = rng.normal(size=(f, c, 3, 3))
        core, u_out, u_in = tucker2(w, *ranks)
        layer = TuckerConv2d(u_in, core, u_out, None, stride, padding)
        return w, layer

    def test_full_rank_matches_dense_conv(self, rng):
        w = rng.normal(size=(6, 4, 3, 3))
        core, u_out, u_in = tucker2(w, 6, 4)
        layer = TuckerConv2d(u_in, core, u_out, None, 1, 1)
        x = Tensor(rng.normal(size=(2, 4, 6, 6)))
        dense = F.conv2d(x, Tensor(w), None, 1, 1)
        np.testing.assert_allclose(layer(x).data, dense.data, atol=1e-8)

    def test_fewer_params_than_dense(self, rng):
        w, layer = self._build(rng, ranks=(3, 2), channels=(8, 16))
        assert layer.num_parameters() < w.size

    def test_shrink_input_channels(self, rng):
        w, layer = self._build(rng)
        keep = np.array([0, 2, 4])
        layer.shrink_input_channels(keep)
        assert layer.in_channels == 3
        out = layer(Tensor(rng.normal(size=(1, 3, 6, 6))))
        assert np.isfinite(out.data).all()

    def test_input_cost_per_channel(self, rng):
        _, layer = self._build(rng, ranks=(4, 3))
        assert layer.input_cost_per_channel() == 3  # r_in

    def test_flags(self, rng):
        _, layer = self._build(rng)
        assert layer.is_conv_like and not layer.prunable_output

    def test_stride_matches_dense(self, rng):
        w = rng.normal(size=(6, 4, 3, 3))
        core, u_out, u_in = tucker2(w, 6, 4)
        layer = TuckerConv2d(u_in, core, u_out, None, stride=2, padding=1)
        x = Tensor(rng.normal(size=(1, 4, 8, 8)))
        dense = F.conv2d(x, Tensor(w), None, 2, 1)
        np.testing.assert_allclose(layer(x).data, dense.data, atol=1e-8)


class TestBasisConv2d:
    def test_full_basis_matches_dense(self, rng):
        w = rng.normal(size=(6, 4, 3, 3))
        mat = w.reshape(6, -1)
        u, s, vt = np.linalg.svd(mat, full_matrices=False)
        coeffs = u * s
        basis = vt.reshape(-1, 4, 3, 3)
        layer = BasisConv2d(basis, coeffs, None, 1, 1)
        x = Tensor(rng.normal(size=(2, 4, 5, 5)))
        dense = F.conv2d(x, Tensor(w), None, 1, 1)
        np.testing.assert_allclose(layer(x).data, dense.data, atol=1e-8)

    def test_bias_applied(self, rng):
        basis = rng.normal(size=(2, 3, 3, 3))
        coeffs = rng.normal(size=(4, 2))
        bias = rng.normal(size=(4,))
        with_bias = BasisConv2d(basis, coeffs, bias, 1, 1)
        without = BasisConv2d(basis, coeffs, None, 1, 1)
        x = Tensor(rng.normal(size=(1, 3, 4, 4)))
        diff = with_bias(x).data - without(x).data
        np.testing.assert_allclose(diff, bias.reshape(1, 4, 1, 1) * np.ones_like(diff), atol=1e-10)

    def test_shrink_input_channels(self, rng):
        layer = BasisConv2d(rng.normal(size=(2, 5, 3, 3)), rng.normal(size=(4, 2)), None, 1, 1)
        layer.shrink_input_channels(np.array([1, 3]))
        assert layer.in_channels == 2

    def test_properties(self, rng):
        layer = BasisConv2d(rng.normal(size=(3, 5, 3, 3)), rng.normal(size=(7, 3)), None, 1, 1)
        assert layer.out_channels == 7
        assert layer.basis_size == 3
        assert layer.input_cost_per_channel() == 3 * 9


class TestReplacement:
    def test_replace_module_in_sequential(self, rng):
        model = vgg8_tiny(num_classes=4)
        target_name, target = conv_like_modules(model)[1]
        f, c = target.out_channels, target.in_channels
        core, u_out, u_in = tucker2(target.weight.data, max(1, f // 2), max(1, c // 2))
        replacement = TuckerConv2d(u_in, core, u_out, None, target.stride, target.padding)
        replace_module(model, target_name, replacement)
        # The replacement is live in the forward pass:
        out = model(Tensor(rng.normal(size=(1, 3, 8, 8))))
        assert np.isfinite(out.data).all()
        # ... and no longer offered as a prunable producer.
        names = [u.name for u in model.pruning_units()]
        assert target_name not in names

    def test_conv_like_modules_sees_replacements(self, rng):
        model = vgg8_tiny(num_classes=4)
        before = len(conv_like_modules(model))
        name, conv = conv_like_modules(model)[0]
        basis = rng.normal(size=(2, conv.in_channels, 3, 3))
        coeffs = rng.normal(size=(conv.out_channels, 2))
        replace_module(model, name, BasisConv2d(basis, coeffs, None, conv.stride, conv.padding))
        assert len(conv_like_modules(model)) == before
