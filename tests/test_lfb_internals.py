"""Unit tests for LFB's basis-size budgeting and SVD basis extraction."""

import numpy as np

from repro.compression.lfb import LearningFilterBasis, _basis_params, _max_useful_basis


class TestBudgetMath:
    def test_basis_params_formula(self):
        assert _basis_params(f=16, c=8, k=3, b=4) == 4 * 8 * 9 + 16 * 4

    def test_max_useful_basis_shrinks(self):
        f, c, k = 64, 32, 3
        b = _max_useful_basis(f, c, k)
        assert _basis_params(f, c, k, b) < f * c * k * k
        # one more basis vector would stop saving (or nearly so)
        assert _basis_params(f, c, k, b + 2) >= f * c * k * k * 0.95

    def test_max_useful_basis_at_least_one(self):
        assert _max_useful_basis(2, 2, 3) >= 1


class TestSvdBasis:
    def test_gram_path_matches_svd_path(self, rng):
        """The Gram-eigenbasis fast path must agree with plain SVD."""
        w = rng.normal(size=(6, 4, 3, 3))
        mat = w.reshape(6, -1)
        u, s, vt = np.linalg.svd(mat, full_matrices=False)
        basis, coeffs = LearningFilterBasis._svd_basis(w, 3)
        reconstruction = coeffs @ basis.reshape(3, -1)
        reference = (u[:, :3] * s[:3]) @ vt[:3]
        np.testing.assert_allclose(reconstruction, reference, atol=1e-8)

    def test_full_rank_reconstructs_exactly(self, rng):
        w = rng.normal(size=(4, 3, 3, 3))
        basis, coeffs = LearningFilterBasis._svd_basis(w, 4)
        reconstruction = (coeffs @ basis.reshape(4, -1)).reshape(w.shape)
        np.testing.assert_allclose(reconstruction, w, atol=1e-8)

    def test_reconstruction_error_monotone_in_b(self, rng):
        w = rng.normal(size=(8, 4, 3, 3))
        mat = w.reshape(8, -1)
        errors = []
        for b in (1, 2, 4, 8):
            basis, coeffs = LearningFilterBasis._svd_basis(w, b)
            approx = coeffs @ basis.reshape(b, -1)
            errors.append(np.linalg.norm(mat - approx))
        assert all(a >= b - 1e-9 for a, b in zip(errors, errors[1:]))

    def test_basis_shapes(self, rng):
        w = rng.normal(size=(10, 5, 3, 3))
        basis, coeffs = LearningFilterBasis._svd_basis(w, 3)
        assert basis.shape == (3, 5, 3, 3)
        assert coeffs.shape == (10, 3)
