"""Tests for loss functions, including the LMA distillation objective."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.losses import (
    cross_entropy,
    kl_divergence,
    lma_distillation_loss,
    lma_transform,
    mse_loss,
    nll_loss,
)
from repro.nn.tensor import Tensor


class TestCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        logits = Tensor([[100.0, 0.0], [0.0, 100.0]])
        assert cross_entropy(logits, np.array([0, 1])).item() < 1e-6

    def test_uniform_prediction_is_log_k(self):
        logits = Tensor(np.zeros((4, 10)))
        assert cross_entropy(logits, np.zeros(4, dtype=int)).item() == pytest.approx(
            np.log(10)
        )

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits_data = rng.normal(size=(3, 4))
        targets = np.array([0, 2, 1])
        logits = Tensor(logits_data, requires_grad=True)
        cross_entropy(logits, targets).backward()
        probs = np.exp(logits_data) / np.exp(logits_data).sum(-1, keepdims=True)
        onehot = np.eye(4)[targets]
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 3, atol=1e-10)


class TestNLLAndMSE:
    def test_nll_matches_cross_entropy(self, rng):
        logits = rng.normal(size=(5, 3))
        targets = np.array([0, 1, 2, 0, 1])
        ce = cross_entropy(Tensor(logits), targets).item()
        nll = nll_loss(F.log_softmax(Tensor(logits)), targets).item()
        assert nll == pytest.approx(ce)

    def test_mse_basic(self):
        assert mse_loss(Tensor([1.0, 3.0]), np.array([1.0, 1.0])).item() == pytest.approx(2.0)

    def test_mse_no_grad_into_target(self):
        pred = Tensor([1.0], requires_grad=True)
        target = Tensor([0.0], requires_grad=True)
        mse_loss(pred, target).backward()
        assert pred.grad is not None
        assert target.grad is None


class TestKLDivergence:
    def test_zero_when_identical(self, rng):
        logits = rng.normal(size=(4, 6))
        loss = kl_divergence(Tensor(logits), logits, temperature=2.0)
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_positive_when_different(self, rng):
        student = Tensor(rng.normal(size=(4, 6)))
        teacher = rng.normal(size=(4, 6))
        assert kl_divergence(student, teacher).item() > 0

    def test_temperature_scaling_applied(self, rng):
        student = Tensor(rng.normal(size=(2, 5)))
        teacher = rng.normal(size=(2, 5))
        # Higher temperature softens distributions; both should stay finite.
        for t in (1, 3, 6, 10):
            assert np.isfinite(kl_divergence(student, teacher, t).item())


class TestLMA:
    def test_transform_preserves_ranking(self, rng):
        logits = rng.normal(size=(8, 10))
        transformed = lma_transform(logits, segments=4)
        orig_rank = logits.argsort(axis=-1)
        new_rank = transformed.argsort(axis=-1)
        np.testing.assert_array_equal(orig_rank, new_rank)

    def test_transform_preserves_range(self, rng):
        logits = rng.normal(size=(4, 6))
        transformed = lma_transform(logits)
        np.testing.assert_allclose(transformed.min(-1), logits.min(-1), atol=1e-9)
        np.testing.assert_allclose(transformed.max(-1), logits.max(-1), atol=1e-9)

    def test_distillation_loss_backward(self, rng):
        student = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        teacher = rng.normal(size=(6, 4))
        targets = rng.integers(0, 4, 6)
        loss = lma_distillation_loss(student, teacher, targets, temperature=3.0, alpha=0.5)
        loss.backward()
        assert np.isfinite(loss.item())
        assert np.abs(student.grad).sum() > 0

    def test_alpha_extremes(self, rng):
        student_data = rng.normal(size=(4, 3))
        teacher = rng.normal(size=(4, 3))
        targets = np.array([0, 1, 2, 0])
        hard_only = lma_distillation_loss(
            Tensor(student_data), teacher, targets, 3.0, alpha=1.0
        ).item()
        ce = cross_entropy(Tensor(student_data), targets).item()
        assert hard_only == pytest.approx(ce, abs=1e-9)
