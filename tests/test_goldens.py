"""Golden-regression tests for the surrogate evaluator's structural metrics.

Params/PR/FLOPs/FR for a fixed set of reference schemes on the two paper
models (ResNet-56/CIFAR-10, VGG-16/CIFAR-100) are pinned to
``tests/goldens/surrogate_metrics.json``.  Any refactor of the model
builders, compression surgery or cost accounting that shifts these numbers
fails here first — loudly and with the exact delta.

To intentionally re-baseline after a behaviour-changing PR::

    pytest tests/test_goldens.py --update-goldens

then review the JSON diff before committing.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.common import EXPERIMENTS, make_evaluator
from repro.space import CompressionScheme, StrategySpace

GOLDEN_PATH = Path(__file__).parent / "goldens" / "surrogate_metrics.json"

#: reference schemes per experiment, as (method_label, strategy_index) chains —
#: indices into ``space.of_method(label)``, stable because the HP grids are.
REFERENCE_CHAINS = [
    [("C3", 4)],
    [("C3", 4), ("C3", 8)],
    [("C2", 2)],
    [("C5", 7), ("C1", 3)],
]


def _reference_schemes(space: StrategySpace):
    for chain in REFERENCE_CHAINS:
        scheme = CompressionScheme()
        for label, index in chain:
            scheme = scheme.extend(space.of_method(label)[index])
        yield scheme


def _measure(exp_name: str, space: StrategySpace) -> dict:
    model_name, dataset_name, task = EXPERIMENTS[exp_name]
    evaluator = make_evaluator(model_name, dataset_name, task, seed=0)
    measured = {}
    for scheme in _reference_schemes(space):
        result = evaluator.evaluate(scheme)
        measured[scheme.identifier] = {
            "params": int(result.params),
            "pr": result.pr,
            "flops": int(result.flops),
            "fr": result.fr,
        }
    return measured


@pytest.mark.parametrize("exp_name", sorted(EXPERIMENTS))
def test_surrogate_metrics_match_goldens(exp_name, space, update_goldens):
    measured = _measure(exp_name, space)

    if update_goldens:
        goldens = json.loads(GOLDEN_PATH.read_text()) if GOLDEN_PATH.exists() else {}
        goldens[exp_name] = measured
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"goldens for {exp_name} regenerated; review the diff")

    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH}; generate it with pytest --update-goldens"
    )
    goldens = json.loads(GOLDEN_PATH.read_text())
    assert exp_name in goldens, f"no goldens for {exp_name}; run --update-goldens"
    expected = goldens[exp_name]

    assert set(measured) == set(expected), "reference scheme set drifted"
    for identifier, golden in expected.items():
        got = measured[identifier]
        # params/flops are exact integer structure counts; pr/fr derive from
        # them by division, so a tight relative tolerance guards against
        # platform float noise without hiding real drift.
        assert got["params"] == golden["params"], f"params drift for {identifier}"
        assert got["flops"] == golden["flops"], f"flops drift for {identifier}"
        assert got["pr"] == pytest.approx(golden["pr"], rel=1e-12), identifier
        assert got["fr"] == pytest.approx(golden["fr"], rel=1e-12), identifier


def test_goldens_file_is_well_formed():
    """The checked-in goldens cover both experiments and all chains."""
    goldens = json.loads(GOLDEN_PATH.read_text())
    assert set(goldens) == set(EXPERIMENTS)
    for exp_name, entries in goldens.items():
        assert len(entries) == len(REFERENCE_CHAINS)
        for identifier, metrics in entries.items():
            assert set(metrics) == {"params", "pr", "flops", "fr"}
            assert metrics["params"] > 0 and metrics["flops"] > 0
            assert 0.0 <= metrics["pr"] <= 1.0
