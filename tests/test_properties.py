"""Hypothesis property tests over the full evaluation pipeline.

These use the surrogate evaluator on ResNet-20 (cheap, ~0.1s per scheme)
and check invariants that must hold for *any* scheme in the space.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluator import SurrogateEvaluator
from repro.data.tasks import EXP1, transfer_task
from repro.models import resnet20
from repro.space import START, CompressionScheme, StrategySpace

_SPACE = StrategySpace(method_labels=["C3", "C4"])
_EVALUATOR = None


def _evaluator() -> SurrogateEvaluator:
    global _EVALUATOR
    if _EVALUATOR is None:
        task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
        _EVALUATOR = SurrogateEvaluator(
            lambda: resnet20(num_classes=10), "resnet20", "cifar10", task,
            seed=0, model_cache_size=64,
        )
    return _EVALUATOR


def _scheme_from_indices(indices) -> CompressionScheme:
    scheme = START
    for i in indices:
        strategy = _SPACE[i % len(_SPACE)]
        if scheme.total_param_step + strategy.param_step > 0.8:
            break
        scheme = scheme.extend(strategy)
    return scheme


@st.composite
def schemes(draw):
    indices = draw(st.lists(st.integers(0, len(_SPACE) - 1), min_size=1, max_size=3))
    return _scheme_from_indices(indices)


class TestEvaluationInvariants:
    @settings(max_examples=15, deadline=None)
    @given(schemes())
    def test_monotone_params_along_prefixes(self, scheme):
        """Each extension can only remove parameters."""
        evaluator = _evaluator()
        previous = evaluator.base_params
        for length in range(1, scheme.length + 1):
            result = evaluator.evaluate(scheme.prefix(length))
            assert result.params <= previous
            previous = result.params

    @settings(max_examples=15, deadline=None)
    @given(schemes())
    def test_pr_and_fr_in_unit_interval(self, scheme):
        result = _evaluator().evaluate(scheme)
        assert 0.0 <= result.pr <= 1.0
        assert -0.05 <= result.fr <= 1.0  # factorisation may add few FLOPs

    @settings(max_examples=15, deadline=None)
    @given(schemes())
    def test_accuracy_bounds(self, scheme):
        result = _evaluator().evaluate(scheme)
        model = _evaluator().accuracy_model
        assert model.floor / 100 - 1e-9 <= result.accuracy
        assert result.accuracy <= (model.baseline + model.headroom) / 100 + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(schemes())
    def test_ar_definition_consistent(self, scheme):
        """AR = (A(S[M]) - A(M)) / A(M) > -1 (paper §3.1)."""
        result = _evaluator().evaluate(scheme)
        assert result.ar > -1.0
        reconstructed = result.base_accuracy * (1 + result.ar)
        assert reconstructed == pytest.approx(result.accuracy, abs=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(schemes())
    def test_evaluation_idempotent(self, scheme):
        evaluator = _evaluator()
        first = evaluator.evaluate(scheme)
        second = evaluator.evaluate(scheme)
        assert first is second

    @settings(max_examples=10, deadline=None)
    @given(schemes())
    def test_pr_close_to_nominal_budget(self, scheme):
        """Measured PR tracks the sum of HP2 fractions (within surgery
        granularity and the per-unit caps)."""
        result = _evaluator().evaluate(scheme)
        nominal = scheme.total_param_step
        assert result.pr <= nominal + 0.08
        assert result.pr >= min(nominal, 0.8) * 0.5 - 0.02
