"""Tests for both evaluation backends."""

import numpy as np
import pytest

from repro.core.evaluator import (
    EVAL_OVERHEAD_HOURS,
    SurrogateEvaluator,
    TrainingEvaluator,
)
from repro.data.tasks import EXP1, transfer_task
from repro.models import resnet8, resnet20
from repro.space import START, StrategySpace


@pytest.fixture(scope="module")
def surrogate():
    task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
    return SurrogateEvaluator(
        lambda: resnet20(num_classes=10), "resnet20", "cifar10", task, seed=0
    )


@pytest.fixture(scope="module")
def module_space():
    return StrategySpace()


class TestSurrogateEvaluator:
    def test_empty_scheme_is_baseline(self, surrogate):
        result = surrogate.evaluate(START)
        assert result.pr == 0.0
        assert result.fr == 0.0
        assert result.ar == 0.0
        assert result.accuracy == pytest.approx(surrogate.base_accuracy)

    def test_single_strategy_hits_hp2_budget(self, surrogate, module_space):
        strategy = module_space.of_method("C3")[10]
        result = surrogate.evaluate(START.extend(strategy))
        assert result.pr == pytest.approx(strategy.param_step, abs=0.05)
        assert result.params < result.base_params
        assert result.flops < result.base_flops

    def test_caching_returns_same_object(self, surrogate, module_space):
        scheme = START.extend(module_space.of_method("C4")[0])
        first = surrogate.evaluate(scheme)
        count = surrogate.evaluation_count
        second = surrogate.evaluate(scheme)
        assert first is second
        assert surrogate.evaluation_count == count

    def test_cost_accumulates(self, surrogate, module_space):
        before = surrogate.total_cost
        surrogate.evaluate(START.extend(module_space.of_method("C3")[3]))
        assert surrogate.total_cost > before

    def test_prefix_extension_consistent(self, surrogate, module_space):
        """seq then seq->s must reuse the cached prefix deterministically."""
        s1 = module_space.of_method("C3")[5]
        s2 = module_space.of_method("C4")[5]
        parent = surrogate.evaluate(START.extend(s1))
        child = surrogate.evaluate(START.extend(s1).extend(s2))
        assert child.pr > parent.pr
        assert child.params < parent.params

    def test_deterministic_across_instances(self, module_space):
        task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
        scheme = START.extend(module_space.of_method("C5")[7])
        results = []
        for _ in range(2):
            ev = SurrogateEvaluator(
                lambda: resnet20(num_classes=10), "resnet20", "cifar10", task, seed=3
            )
            results.append(ev.evaluate(scheme))
        assert results[0].accuracy == results[1].accuracy
        assert results[0].params == results[1].params

    def test_objectives_vector(self, surrogate, module_space):
        result = surrogate.evaluate(START.extend(module_space.of_method("C3")[1]))
        np.testing.assert_allclose(result.objectives, [result.ar, result.pr])

    def test_meets_target(self, surrogate, module_space):
        strategy = next(s for s in module_space.of_method("C3") if s.param_step >= 0.36)
        result = surrogate.evaluate(START.extend(strategy))
        assert result.meets_target(0.3)
        assert not result.meets_target(0.9)

    def test_pareto_results_filter(self, surrogate):
        front = surrogate.pareto_results()
        assert front
        constrained = surrogate.pareto_results(gamma=0.3)
        assert all(r.pr >= 0.3 for r in constrained)

    def test_str_format(self, surrogate, module_space):
        text = str(surrogate.evaluate(START.extend(module_space.of_method("C3")[2])))
        assert "PR" in text and "acc" in text


class TestTrainingEvaluator:
    @pytest.fixture(scope="class")
    def trainer_eval(self, tiny_data):
        train, val = tiny_data
        return TrainingEvaluator(
            lambda: resnet8(num_classes=4),
            train,
            val,
            pretrain_epochs=3,
            seed=0,
        )

    def test_base_accuracy_above_chance(self, trainer_eval):
        assert trainer_eval.base_accuracy > 1.0 / 4

    def test_real_compression_scheme(self, trainer_eval, module_space):
        scheme = START.extend(module_space.of_method("C3")[0])
        result = trainer_eval.evaluate(scheme)
        assert result.params < result.base_params
        assert 0 <= result.accuracy <= 1
        assert result.cost > EVAL_OVERHEAD_HOURS

    def test_task_built_from_dataset(self, trainer_eval):
        assert trainer_eval.task.num_classes == 4
        assert trainer_eval.task.model_params > 0

    def test_two_step_scheme(self, trainer_eval, module_space):
        s1 = module_space.of_method("C3")[0]
        s2 = module_space.of_method("C4")[0]
        result = trainer_eval.evaluate(START.extend(s1).extend(s2))
        assert result.pr > 0.05
        assert len(result.step_reports) >= 1
