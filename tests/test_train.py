"""Tests for the Trainer loop and accuracy evaluation."""

import numpy as np

from repro.models import resnet8
from repro.nn import Trainer, evaluate_accuracy
from repro.nn.losses import mse_loss


class TestTrainer:
    def test_loss_decreases(self, tiny_data):
        train, _ = tiny_data
        model = resnet8(num_classes=4)
        report = Trainer(lr=0.05, batch_size=32, seed=0).fit(model, train, epochs=2)
        first = np.mean(report.losses[:3])
        last = np.mean(report.losses[-3:])
        assert last < first

    def test_fractional_epochs_step_count(self, tiny_data):
        train, _ = tiny_data
        model = resnet8(num_classes=4)
        steps_per_epoch = int(np.ceil(len(train) / 32))
        report = Trainer(batch_size=32, seed=0).fit(model, train, epochs=0.5)
        assert report.steps == max(1, round(0.5 * steps_per_epoch))
        assert len(report.losses) == report.steps

    def test_step_hook_called_every_step(self, tiny_data):
        train, _ = tiny_data
        calls = []
        model = resnet8(num_classes=4)
        Trainer(batch_size=32, seed=0).fit(
            model, train, epochs=1, step_hook=lambda m, s: calls.append(s)
        )
        assert calls == list(range(len(calls)))
        assert len(calls) >= 1

    def test_custom_loss_fn_receives_indices(self, tiny_data):
        train, _ = tiny_data
        seen = []

        def loss_fn(logits, targets, idx):
            seen.append(np.asarray(idx))
            return mse_loss(logits, np.zeros(logits.shape))

        model = resnet8(num_classes=4)
        Trainer(batch_size=16, seed=0).fit(model, train, epochs=0.2, loss_fn=loss_fn)
        assert seen and all(isinstance(i, np.ndarray) for i in seen)
        assert all((i < len(train)).all() for i in seen)

    def test_training_improves_accuracy(self, tiny_data):
        train, val = tiny_data
        model = resnet8(num_classes=4)
        before = evaluate_accuracy(model, val)
        Trainer(lr=0.05, batch_size=32, seed=0).fit(model, train, epochs=4)
        after = evaluate_accuracy(model, val)
        assert after > max(before, 1.0 / 4 + 0.05)  # clearly better than chance


class TestEvaluateAccuracy:
    def test_bounds(self, tiny_data, trained_resnet8):
        _, val = tiny_data
        acc = evaluate_accuracy(trained_resnet8, val)
        assert 0.0 <= acc <= 1.0

    def test_restores_training_mode(self, tiny_data, trained_resnet8):
        _, val = tiny_data
        trained_resnet8.train()
        evaluate_accuracy(trained_resnet8, val)
        assert trained_resnet8.training
        trained_resnet8.eval()
        evaluate_accuracy(trained_resnet8, val)
        assert not trained_resnet8.training
        trained_resnet8.train()

    def test_deterministic(self, tiny_data, trained_resnet8):
        _, val = tiny_data
        assert evaluate_accuracy(trained_resnet8, val) == evaluate_accuracy(
            trained_resnet8, val
        )
