"""C8 post-training quantization through the whole search stack.

Three layers:

* *golden accuracy pins* — the surrogate-evaluated accuracy of reference C8
  schemes (int8/fp16, alone and composed with pruning) on the Exp1 task is
  pinned to ``tests/goldens/quant_accuracy.json``; regenerate deliberately
  with ``pytest tests/test_quant_search.py --update-goldens``;
* *composed search* — a solver over ``StrategySpace(["C3", "C8"])`` finds and
  reports prune+quant schemes end to end, with the measured-latency column
  attached to every result;
* *effect-signature alignment* — the cost model's predicted ``weight_bits``
  matches the precision the evaluator actually executed (zero drift).
"""

import json
from pathlib import Path

import pytest

from repro.analysis.costmodel import Budget
from repro.baselines import RandomSearch
from repro.core.evaluator import SurrogateEvaluator
from repro.core.config import EvaluatorConfig
from repro.data.tasks import EXP1, transfer_task
from repro.experiments.common import EXPERIMENTS, make_evaluator
from repro.models import resnet20
from repro.space import StrategySpace

GOLDEN_PATH = Path(__file__).parent / "goldens" / "quant_accuracy.json"

#: reference quantization schemes pinned on the Exp1 (ResNet-56) surrogate
REFERENCE_SCHEMES = [
    "C8[HP19=int8,HP20=2]",
    "C8[HP19=fp16,HP20=2]",
    "C3[HP1=0.1,HP2=0.2,HP6=0.7] -> C8[HP19=int8,HP20=4]",
]


@pytest.fixture(scope="module")
def quant_space():
    return StrategySpace(include_quantization=True)


def _surrogate(latency_batch=None, seed=0):
    task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
    return SurrogateEvaluator(
        lambda: resnet20(num_classes=10), "resnet20", "cifar10", task,
        config=EvaluatorConfig(seed=seed, latency_batch=latency_batch),
    )


# --------------------------------------------------------------------------- #
# Golden accuracy pins
# --------------------------------------------------------------------------- #
def _measure_reference(quant_space) -> dict:
    model_name, dataset_name, task = EXPERIMENTS["Exp1"]
    evaluator = make_evaluator(model_name, dataset_name, task, seed=0)
    measured = {}
    for text in REFERENCE_SCHEMES:
        scheme = quant_space.parse_scheme(text)
        result = evaluator.evaluate(scheme)
        measured[scheme.identifier] = {
            "accuracy": result.accuracy,
            "accuracy_delta": result.accuracy - task.model_accuracy,
            "effective_bits": result.step_reports[-1].details["effective_bits"],
            "params": int(result.params),
        }
    return measured


def test_quant_accuracy_matches_goldens(quant_space, update_goldens):
    measured = _measure_reference(quant_space)

    if update_goldens:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(measured, indent=2, sort_keys=True) + "\n")
        pytest.skip("quant accuracy goldens regenerated; review the diff")

    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH}; generate it with pytest --update-goldens"
    )
    goldens = json.loads(GOLDEN_PATH.read_text())
    assert set(measured) == set(goldens), "reference scheme set drifted"
    for identifier, golden in goldens.items():
        got = measured[identifier]
        assert got["params"] == golden["params"], f"params drift for {identifier}"
        assert got["effective_bits"] == golden["effective_bits"], identifier
        assert got["accuracy"] == pytest.approx(golden["accuracy"], rel=1e-9), (
            f"accuracy drift for {identifier}"
        )
        assert got["accuracy_delta"] == pytest.approx(
            golden["accuracy_delta"], rel=1e-9, abs=1e-12
        ), identifier


def test_goldens_pin_sensible_quantization_damage():
    """int8 hurts more than fp16; both cost well under a point of accuracy."""
    goldens = json.loads(GOLDEN_PATH.read_text())
    deltas = {
        identifier: entry["accuracy_delta"] for identifier, entry in goldens.items()
    }
    int8 = deltas["C8[HP19=int8,HP20=2]"]
    fp16 = deltas["C8[HP19=fp16,HP20=2]"]
    assert -0.01 < int8 < 0.0, f"int8-only delta {int8} out of the pinned band"
    # fp16 is storage-only: near-lossless, so its delta sits inside the
    # surrogate's noise floor and may land a hair above zero
    assert abs(fp16) < 1e-3 and fp16 > int8, f"fp16 delta {fp16} vs int8 {int8}"


# --------------------------------------------------------------------------- #
# Composed prune+quant search, end to end
# --------------------------------------------------------------------------- #
class TestComposedSearch:
    def test_random_search_composes_pruning_with_quantization(self):
        space = StrategySpace(method_labels=["C3", "C8"])
        evaluator = _surrogate(latency_batch=4)
        result = RandomSearch(
            evaluator, space, gamma=0.2, budget_hours=1.0, seed=0
        ).run()
        assert result.evaluations > 1
        quantized = [
            r for r in result.all_results
            if any(s.method_label == "C8" for s in r.scheme.strategies)
        ]
        assert quantized, "no prune+quant scheme was evaluated (seed drifted?)"
        # the measured-latency column is attached to every result...
        assert all(r.latency_ms > 0.0 for r in result.all_results)
        # ...and quantized schemes report the executed precision
        for r in quantized:
            report = next(
                rep for rep in r.step_reports if rep.method == "C8"
            )
            assert report.details["effective_bits"] in (8.0, 16.0)

    def test_summary_reports_measured_latency(self):
        evaluator = _surrogate(latency_batch=4)
        space = StrategySpace(method_labels=["C3", "C8"])
        result = RandomSearch(
            evaluator, space, gamma=0.2, budget_hours=0.5, seed=1
        ).run()
        if result.best is not None:
            assert "ms/batch" in result.summary()


# --------------------------------------------------------------------------- #
# Effect-signature alignment: predicted bits == executed bits
# --------------------------------------------------------------------------- #
class TestWeightBitsDrift:
    def test_predicted_bits_match_executed(self, quant_space):
        evaluator = _surrogate()
        evaluator.set_budget(Budget(max_params=10**9))  # enables predictions
        for text in ("C8[HP19=int8,HP20=1]", "C8[HP19=fp16,HP20=2]"):
            evaluator.evaluate(quant_space.parse_scheme(text))
        drift = evaluator.prediction_drift()
        assert drift["weight_bits_mismatches"] == 0.0

    def test_float_schemes_do_not_drift_either(self, quant_space):
        evaluator = _surrogate()
        evaluator.set_budget(Budget(max_params=10**9))
        evaluator.evaluate(quant_space.parse_scheme("C3[HP1=0.1,HP2=0.2,HP6=0.7]"))
        assert evaluator.prediction_drift()["weight_bits_mismatches"] == 0.0

    def test_latency_violations_counted_not_rejected(self, quant_space):
        evaluator = _surrogate(latency_batch=2)
        # an impossible measured-latency budget: everything violates, nothing
        # is rejected (the cost is already paid when the wall-clock exists).
        # Linting is off so the S004 *proxy* check cannot reject first — the
        # point here is the measured side of the constraint.
        evaluator.set_budget(Budget(max_latency_ms=1e-9))
        evaluator.lint_schemes = False
        result = evaluator.evaluate(
            quant_space.parse_scheme("C8[HP19=int8,HP20=1]")
        )
        assert result.latency_ms > 0.0
        assert evaluator.latency_violations == 1
