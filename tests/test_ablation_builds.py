"""Build-path tests for the knowledge ablation variants (§4.5)."""


from repro.core.ablation import VARIANTS, build_variant
from repro.core.evaluator import SurrogateEvaluator
from repro.data.tasks import EXP1, transfer_task
from repro.models import resnet20


def _evaluator():
    task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
    return SurrogateEvaluator(
        lambda: resnet20(num_classes=10), "resnet20", "cifar10", task, seed=0
    )


class TestVariantWiring:
    def test_variant_list(self):
        assert VARIANTS == (
            "AutoMC",
            "AutoMC-KG",
            "AutoMC-NNexp",
            "AutoMC-MultipleSource",
            "AutoMC-ProgressiveSearch",
        )

    def test_autockg_skips_transr(self):
        searcher = build_variant(
            "AutoMC-KG", _evaluator(), budget_hours=0.1, embedding_rounds=1
        )
        assert searcher.name == "AutoMC-KG"
        assert searcher.fmo.embeddings.transr_losses == []
        # Experience is still used: warm start happened.
        assert searcher.fmo.buffer

    def test_autonnexp_skips_experience_everywhere(self):
        searcher = build_variant(
            "AutoMC-NNexp", _evaluator(), budget_hours=0.1, embedding_rounds=1
        )
        assert searcher.fmo.embeddings.nn_exp_losses == []
        assert searcher.fmo.buffer == []  # no warm start either

    def test_full_automc_uses_both(self):
        searcher = build_variant(
            "AutoMC", _evaluator(), budget_hours=0.1, embedding_rounds=1
        )
        assert searcher.fmo.embeddings.transr_losses
        assert searcher.fmo.embeddings.nn_exp_losses
        assert searcher.fmo.buffer
