"""Tests for repro.obs: tracing, metrics, journaling and summaries.

The load-bearing invariant (an ISSUE acceptance criterion) is *exact* cost
attribution: summing ``evaluate`` span costs in journal order must equal
``Evaluator.total_cost`` bit-for-bit, for serial evaluators, serial engines
and parallel engines alike.
"""

import copy
import json
import pickle

import pytest

from repro.analysis.linter import SchemeRejected
from repro.core import EvaluationEngine, EvaluatorConfig, SurrogateEvaluator
from repro.core.engine import WorkerError, _WorkerFailure
from repro.data.tasks import EXP1, transfer_task
from repro.models import resnet8, resnet20
from repro.nn import Trainer
from repro.obs import (
    JOURNAL_SCHEMA_VERSION,
    NULL_METRICS,
    NULL_TRACER,
    Metrics,
    RunJournal,
    Tracer,
    attach_tracer,
    read_journal,
    summarize_journal,
)

TASK = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)


def make_surrogate(seed=0):
    return SurrogateEvaluator(
        lambda: resnet20(num_classes=10),
        "resnet20",
        "cifar10",
        TASK,
        config=EvaluatorConfig(seed=seed),
    )


def _make_batch(space):
    from repro.space import CompressionScheme

    c3 = space.of_method("C3")
    c2 = space.of_method("C2")
    base = CompressionScheme((c3[4],))
    return [base, base.extend(c3[8]), CompressionScheme((c2[2],)), base]


# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_gauge_histogram(self):
        metrics = Metrics()
        metrics.counter("evals").inc()
        metrics.counter("evals").inc(2.5)
        metrics.gauge("front").set(7)
        for value in (1.0, 3.0, 2.0):
            metrics.histogram("dur").observe(value)

        assert metrics.counter("evals").value == 3.5
        assert metrics.gauge("front").value == 7
        hist = metrics.histogram("dur")
        assert (hist.count, hist.min, hist.max) == (3, 1.0, 3.0)
        assert hist.mean == pytest.approx(2.0)

    def test_get_or_create_returns_same_instrument(self):
        metrics = Metrics()
        assert metrics.counter("x") is metrics.counter("x")
        assert metrics.histogram("x") is metrics.histogram("x")

    def test_snapshot_is_json_serialisable(self):
        metrics = Metrics()
        metrics.counter("a").inc()
        metrics.gauge("b").set(0.5)
        metrics.histogram("c").observe(2.0)
        snap = json.loads(json.dumps(metrics.snapshot()))
        assert snap["counters"] == {"a": 1.0}
        assert snap["gauges"] == {"b": 0.5}
        assert snap["histograms"]["c"]["count"] == 1

    def test_null_metrics_accepts_everything(self):
        NULL_METRICS.counter("x").inc()
        NULL_METRICS.gauge("y").set(1.0)
        NULL_METRICS.histogram("z").observe(3.0)
        assert NULL_METRICS.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


# --------------------------------------------------------------------------- #
class TestTracer:
    def test_span_nesting_records_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert [s.name for s in tracer.spans] == ["inner", "outer"]  # finish order

    def test_event_attaches_to_open_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.event("cache_hit", source="memory")
        assert tracer.events[0]["parent"] == outer.span_id
        assert tracer.metrics.counter("event.cache_hit").value == 1

    def test_finish_tolerates_exception_unwind(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("inner")  # never finished explicitly
        tracer.finish(outer)   # unwinds past the abandoned inner span
        assert tracer._stack == []

    def test_span_metrics_and_cost(self):
        tracer = Tracer()
        with tracer.span("evaluate") as span:
            span.add_cost(0.25)
            span.set(pr=0.4)
        assert tracer.metrics.counter("span.evaluate").value == 1
        assert tracer.metrics.counter("sim_hours.evaluate").value == 0.25
        assert tracer.metrics.histogram("dur.evaluate").count == 1
        assert tracer.spans[0].attrs["pr"] == 0.4

    def test_keep_spans_bounds_memory(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        tracer = Tracer(journal=journal, keep_spans=2)
        for i in range(5):
            with tracer.span("s", i=i):
                pass
        tracer.close()
        assert len(tracer.spans) == 2
        # ... but the journal still has all five
        spans = [r for r in read_journal(journal.path) if r.get("type") == "span"]
        assert len(spans) == 5


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", x=1) as span:
            span.add_cost(1.0)
            span.set(y=2)
        NULL_TRACER.event("whatever")
        NULL_TRACER.metrics.counter("c").inc()
        NULL_TRACER.close()
        assert NULL_TRACER.spans == [] and NULL_TRACER.events == []

    def test_copy_and_pickle_preserve_singleton(self):
        assert copy.deepcopy(NULL_TRACER) is NULL_TRACER
        assert copy.copy(NULL_TRACER) is NULL_TRACER
        assert pickle.loads(pickle.dumps(NULL_TRACER)) is NULL_TRACER

    def test_attach_tracer_walks_engine_and_trainer(self):
        evaluator = make_surrogate()
        engine = EvaluationEngine(evaluator, workers=0)
        tracer = Tracer()
        attach_tracer(engine, tracer)
        assert engine.tracer is tracer
        assert evaluator.tracer is tracer
        trainer = getattr(evaluator, "trainer", None)
        if trainer is not None:
            assert trainer.tracer is tracer


# --------------------------------------------------------------------------- #
class TestJournal:
    def test_meta_record_first_with_schema(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path, run={"algorithm": "Test"}) as journal:
            journal.write({"type": "event", "name": "x", "attrs": {}})
        records = list(read_journal(path))
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == JOURNAL_SCHEMA_VERSION
        assert records[0]["run"] == {"algorithm": "Test"}
        assert all(r["v"] == JOURNAL_SCHEMA_VERSION for r in records)

    def test_write_after_close_is_noop(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.close()
        journal.write({"type": "event", "name": "late"})
        journal.close()  # idempotent
        assert len(list(read_journal(journal.path))) == 1

    def test_unserialisable_attrs_are_stringified(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.write({"type": "event", "name": "x", "attrs": {"obj": object()}})
        journal.close()
        record = list(read_journal(journal.path))[1]
        assert isinstance(record["attrs"]["obj"], str)

    def test_reader_skips_corruption(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.write({"type": "event", "name": "good", "attrs": {}})
        with open(path, "a") as handle:
            handle.write("not json at all\n")
            handle.write("[1, 2, 3]\n")          # parseable but not an object
            handle.write('{"type": "event", "na')  # truncated mid-record
        skipped = []
        records = list(read_journal(path, on_skip=lambda n, raw: skipped.append(n)))
        assert len(records) == 2
        assert len(skipped) == 3


# --------------------------------------------------------------------------- #
class TestCostAttribution:
    """The acceptance criterion: journal cost sum == total_cost, exactly."""

    def _journal_cost(self, path):
        return summarize_journal(path).sim_cost_total

    def test_serial_evaluator_exact(self, tmp_path, space):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(journal=RunJournal(path))
        evaluator = make_surrogate()
        attach_tracer(evaluator, tracer)
        evaluator.evaluate_many(_make_batch(space))
        tracer.close()
        assert self._journal_cost(path) == evaluator.total_cost
        assert summarize_journal(path).fresh_evaluations == evaluator.evaluation_count

    def test_serial_engine_exact_with_cache_hits(self, tmp_path, space):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(journal=RunJournal(path))
        engine = EvaluationEngine(make_surrogate(), workers=0)
        attach_tracer(engine, tracer)
        batch = _make_batch(space)
        engine.evaluate_many(batch)
        engine.evaluate_many(batch)  # pure memory hits, zero extra cost
        tracer.close()
        summary = summarize_journal(path)
        assert summary.sim_cost_total == engine.total_cost
        assert summary.cache_hits_memory > 0
        assert summary.span_counts["engine.batch"] == 2

    def test_parallel_engine_exact(self, tmp_path, space):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(journal=RunJournal(path))
        with EvaluationEngine(make_surrogate(), workers=2) as engine:
            attach_tracer(engine, tracer)
            engine.evaluate_many(_make_batch(space))
            tracer.close()
            assert self._journal_cost(path) == engine.total_cost
            # bit-identical to a serial run of the same batch
            serial = make_surrogate()
            serial.evaluate_many(_make_batch(space))
            assert engine.total_cost == serial.total_cost

    def test_disk_cache_hits_pay_nothing(self, tmp_path, space):
        cache_dir = tmp_path / "cache"
        warm = EvaluationEngine(make_surrogate(), workers=0, cache_dir=cache_dir)
        warm.evaluate_many(_make_batch(space))

        path = tmp_path / "run.jsonl"
        tracer = Tracer(journal=RunJournal(path))
        cold = EvaluationEngine(make_surrogate(), workers=0, cache_dir=cache_dir)
        attach_tracer(cold, tracer)
        cold.evaluate_many(_make_batch(space))
        tracer.close()
        summary = summarize_journal(path)
        assert summary.cache_hits_disk == len({s.identifier for s in _make_batch(space)})
        assert summary.sim_cost_total == 0.0 == cold.total_cost

    def test_lint_reject_emits_event_not_cost(self, tmp_path, space):
        from repro.space import CompressionScheme

        c3 = space.of_method("C3")
        doomed = CompressionScheme(tuple(c3[0] for _ in range(6)))  # L006
        path = tmp_path / "run.jsonl"
        tracer = Tracer(journal=RunJournal(path))
        evaluator = make_surrogate()
        attach_tracer(evaluator, tracer)
        with pytest.raises(SchemeRejected):
            evaluator.evaluate(doomed)
        tracer.close()
        summary = summarize_journal(path)
        assert summary.lint_rejects == 1
        assert summary.sim_cost_total == 0.0 == evaluator.total_cost


# --------------------------------------------------------------------------- #
class TestWorkerFailure:
    def test_worker_failures_aggregate_into_one_error(self, space):
        """Every _WorkerFailure in a batch surfaces in one WorkerError."""
        engine = EvaluationEngine(make_surrogate(), workers=2)
        tracer = Tracer()
        attach_tracer(engine, tracer)
        batch = _make_batch(space)[:2]

        engine._dispatch = lambda fresh: {
            s.identifier: _WorkerFailure(s.identifier, "RuntimeError", "boom", "tb text")
            for s in fresh
        }
        with pytest.raises(WorkerError) as excinfo:
            engine.evaluate_many(batch)
        error = excinfo.value
        # first failure mirrored as top-level attributes, all carried in .failures
        assert error.scheme_id == batch[0].identifier
        assert error.cause_type == "RuntimeError"
        assert "boom" in str(error)
        assert [f.scheme_id for f in error.failures] == [s.identifier for s in batch]
        assert engine.worker_failures == 2
        assert tracer.metrics.counter("worker_failures").value == 2
        failed_events = [e for e in tracer.events if e["name"] == "worker_failed"]
        assert len(failed_events) == 2

    def test_worker_failure_charges_nothing(self, space):
        engine = EvaluationEngine(make_surrogate(), workers=2)
        batch = _make_batch(space)[:2]

        engine._dispatch = lambda fresh: {
            s.identifier: _WorkerFailure(s.identifier, "ValueError", "nope", "")
            for s in fresh
        }
        with pytest.raises(WorkerError):
            engine.evaluate_many(batch)
        assert engine.total_cost == 0.0
        assert engine.evaluation_count == 0


# --------------------------------------------------------------------------- #
class TestTrainingSpans:
    def test_trainer_emits_fit_and_epoch_spans(self, tiny_data):
        train, _ = tiny_data
        tracer = Tracer()
        trainer = Trainer(lr=0.05, batch_size=32, seed=0)
        trainer.tracer = tracer
        model = resnet8(num_classes=4)
        report = trainer.fit(model, train, epochs=2)
        names = [s.name for s in tracer.spans]
        assert names.count("train.fit") == 1
        assert names.count("train.epoch") == 2
        fit_span = next(s for s in tracer.spans if s.name == "train.fit")
        assert fit_span.attrs["final_loss"] == report.final_loss
        epochs = [s for s in tracer.spans if s.name == "train.epoch"]
        assert [s.attrs["epoch"] for s in epochs] == [0, 1]
        assert sum(s.attrs["steps"] for s in epochs) == report.steps

    def test_untraced_trainer_output_identical(self, tiny_data):
        train, _ = tiny_data
        plain = Trainer(lr=0.05, batch_size=32, seed=0)
        traced = Trainer(lr=0.05, batch_size=32, seed=0)
        traced.tracer = Tracer()
        losses_plain = plain.fit(resnet8(num_classes=4), train, epochs=1).losses
        losses_traced = traced.fit(resnet8(num_classes=4), train, epochs=1).losses
        assert losses_plain == losses_traced


def _make_automc(**kwargs):
    from repro.core.api import AutoMC
    from repro.core.progressive import ProgressiveConfig
    from repro.knowledge.embedding import EmbeddingConfig

    return AutoMC(
        make_surrogate(),
        embedding_config=EmbeddingConfig(
            rounds=1, transr_epochs_per_round=1, nn_exp_epochs_per_round=2
        ),
        progressive_config=ProgressiveConfig(
            sample_size=2, evals_per_round=2, candidate_subsample=32
        ),
        **kwargs,
    )


# --------------------------------------------------------------------------- #
class TestSearchIntegration:
    def test_random_search_journal_matches_total_cost(self, tmp_path):
        from repro.baselines import RandomSearch
        from repro.space import StrategySpace

        path = tmp_path / "run.jsonl"
        tracer = Tracer(journal=RunJournal(path, run={"algorithm": "Random"}))
        evaluator = make_surrogate()
        attach_tracer(evaluator, tracer)
        searcher = RandomSearch(
            evaluator, StrategySpace(), gamma=0.3, budget_hours=0.15, seed=0
        )
        result = searcher.run()
        tracer.close()

        summary = summarize_journal(path)
        assert summary.sim_cost_total == evaluator.total_cost == result.total_cost
        assert summary.fresh_evaluations == result.evaluations
        assert summary.rounds >= 1
        assert summary.final_trajectory is not None
        assert summary.final_trajectory["evaluations"] == result.evaluations
        assert result.wall_seconds > 0.0
        assert result.obs is not None
        assert result.obs["counters"]["span.evaluate"] == result.evaluations

    def test_untraced_search_has_no_obs_payload(self):
        from repro.baselines import RandomSearch
        from repro.space import StrategySpace

        evaluator = make_surrogate()
        searcher = RandomSearch(
            evaluator, StrategySpace(), gamma=0.3, budget_hours=0.1, seed=0
        )
        result = searcher.run()
        assert result.obs is None
        assert result.wall_seconds > 0.0

    def test_automc_trace_path_and_close(self, tmp_path):
        path = tmp_path / "automc.jsonl"
        automc = _make_automc(budget_hours=0.3, trace=str(path))
        assert automc.tracer.enabled
        result = automc.search()  # closes the tracer on the way out
        assert automc.tracer.journal.closed
        summary = summarize_journal(path)
        assert summary.sim_cost_total == result.total_cost
        # The header names the API; the solver annotates the run afterwards
        # (Tracer.annotate_run) and both merge into one run dict.
        assert summary.run["api"] == "AutoMC"
        assert summary.run["solver"] == "progressive"
        assert summary.run["algorithm"] == "AutoMC"
        assert summary.solver == "progressive"

    def test_automc_trace_true_in_memory(self):
        automc = _make_automc(budget_hours=0.3, trace=True)
        automc.search()
        assert automc.tracer.journal is None
        assert any(s.name == "evaluate" for s in automc.tracer.spans)
        assert any(s.name == "search.round" for s in automc.tracer.spans)

    def test_automc_default_is_null_tracer(self):
        automc = _make_automc(budget_hours=0.05)
        assert automc.tracer is NULL_TRACER


# --------------------------------------------------------------------------- #
class TestSummary:
    def test_summary_of_truncated_journal(self, tmp_path, space):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(journal=RunJournal(path))
        evaluator = make_surrogate()
        attach_tracer(evaluator, tracer)
        evaluator.evaluate_many(_make_batch(space))
        tracer.close()

        full = path.read_text().splitlines()
        truncated = tmp_path / "cut.jsonl"
        # cut mid-way through the last record, as a crash would
        truncated.write_text("\n".join(full[:-1]) + "\n" + full[-1][: len(full[-1]) // 2])
        summary = summarize_journal(truncated)
        assert summary.skipped_lines == 1
        assert summary.records == len(full) - 1
        assert 0.0 < summary.sim_cost_total <= evaluator.total_cost

    def test_format_and_to_dict(self, tmp_path, space):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(journal=RunJournal(path, run={"seed": 0}))
        evaluator = make_surrogate()
        attach_tracer(evaluator, tracer)
        evaluator.evaluate_many(_make_batch(space))
        tracer.close()
        summary = summarize_journal(path)
        text = summary.format()
        assert "fresh" in text and "simulated cost" in text and "seed=0" in text
        payload = json.loads(json.dumps(summary.to_dict()))
        assert payload["fresh_evaluations"] == summary.fresh_evaluations

    def test_unknown_record_types_are_ignored(self, tmp_path):
        path = tmp_path / "future.jsonl"
        with RunJournal(path) as journal:
            journal.write({"type": "hologram", "name": "???", "weird": [1, 2]})
            journal.write({"type": "span", "name": "evaluate", "dur": 0.1, "cost": 0.5})
        summary = summarize_journal(path)
        assert summary.fresh_evaluations == 1
        assert summary.sim_cost_total == 0.5
