"""Dtype discipline of the float32 training default.

One precision end-to-end: tensors, parameters, BN buffers, dropout masks and
intermediate buffers all follow the global default dtype, and a full model
forward never silently upcasts to float64 (which would double memory traffic
on the hot path).
"""

import numpy as np
import pytest

from repro.data import tiny_dataset
from repro.models import resnet8, vgg8_tiny
from repro.nn import (
    BatchNorm2d,
    Tensor,
    default_dtype,
    get_default_dtype,
    set_default_dtype,
)
from repro.nn import functional as F


class TestDefaultDtype:
    def test_default_is_float32(self):
        assert get_default_dtype() == np.float32

    def test_tensor_follows_default(self):
        assert Tensor([1.0, 2.0]).dtype == np.float32
        assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float32

    def test_context_manager_restores(self):
        with default_dtype(np.float64):
            assert get_default_dtype() == np.float64
            assert Tensor([1.0]).dtype == np.float64
        assert get_default_dtype() == np.float32

    def test_set_default_dtype_rejects_non_float(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)

    def test_explicit_dtype_overrides_default(self):
        assert Tensor(np.zeros(3), dtype=np.float64).dtype == np.float64


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
class TestModelForwardPreservesDtype:
    def test_resnet_forward_dtype(self, rng, dtype):
        with default_dtype(dtype):
            model = resnet8(num_classes=4)
            x = Tensor(rng.normal(size=(2, 3, 8, 8)))
            assert x.dtype == dtype
            assert model(x).dtype == dtype
            assert model.eval()(x).dtype == dtype

    def test_vgg_forward_dtype(self, rng, dtype):
        # VGG exercises dropout + max-pool paths on top of conv/BN/linear.
        with default_dtype(dtype):
            model = vgg8_tiny(num_classes=4)
            x = Tensor(rng.normal(size=(2, 3, 8, 8)))
            assert model(x).dtype == dtype
            assert model.eval()(x).dtype == dtype

    def test_training_step_keeps_param_dtype(self, dtype):
        from repro.nn import Trainer

        with default_dtype(dtype):
            data = tiny_dataset(num_classes=4, num_samples=32, image_size=8, seed=0)
            model = resnet8(num_classes=4)
            # Several steps so the cosine schedule's lr updates are exercised
            # (a non-python-float lr would promote every parameter).
            Trainer(lr=0.05, batch_size=16, seed=0).fit(model, data, epochs=2)
            for name, p in model.named_parameters():
                assert p.dtype == dtype, name


class TestOpDtypes:
    def test_dropout_mask_follows_input_dtype(self, rng):
        for dtype in (np.float32, np.float64):
            x = Tensor(rng.normal(size=(4, 8)), dtype=dtype)
            out = F.dropout(x, p=0.5, training=True, rng=np.random.default_rng(0))
            assert out.dtype == dtype

    def test_batch_norm_eval_scale_shift_follow_input_dtype(self, rng):
        for dtype in (np.float32, np.float64):
            with default_dtype(dtype):
                bn = BatchNorm2d(5).eval()
                out = bn(Tensor(rng.normal(size=(2, 5, 3, 3))))
                assert out.dtype == dtype

    def test_batch_norm_running_stats_keep_dtype(self, rng):
        bn = BatchNorm2d(5)
        assert bn.running_mean.dtype == np.float32
        bn(Tensor(rng.normal(size=(4, 5, 3, 3))))
        assert bn.running_mean.dtype == np.float32
        assert bn.running_var.dtype == np.float32

    def test_dataset_images_follow_default_dtype(self):
        assert tiny_dataset(num_samples=16).images.dtype == np.float32
        with default_dtype(np.float64):
            assert tiny_dataset(num_samples=16).images.dtype == np.float64

    def test_load_state_dict_casts_to_param_dtype(self):
        model = resnet8(num_classes=4)
        state64 = {k: v.astype(np.float64) for k, v in model.state_dict().items()}
        model.load_state_dict(state64)
        for name, p in model.named_parameters():
            assert p.dtype == np.float32, name
