"""Static cost model: abstract interpretation accuracy and budget pruning.

Three layers of guarantees:

* the abstraction is *exact* on every untouched zoo architecture (params
  and FLOPs match ``profile_model`` bit for bit);
* post-scheme predictions stay within the tolerances pinned in
  ``tests/goldens/costmodel_tolerance.json`` on every architecture;
* budgets reject statically — zero simulated cost — and pruning the search
  space up front is observationally identical to post-hoc filtering.
"""

import copy
import json
import os

import pytest

from repro.analysis import Budget, SchemeCostModel, lint_scheme
from repro.analysis.linter import SchemeRejected
from repro.compression import EXTENSION_METHODS, METHODS
from repro.compression.base import ExecutionContext
from repro.core.config import EvaluatorConfig
from repro.data.tasks import EXP1, transfer_task
from repro.models import available_models, create_model, resnet20
from repro.nn.profile import profile_model
from repro.space import StrategySpace

GOLDEN = os.path.join(os.path.dirname(__file__), "goldens", "costmodel_tolerance.json")

ALL_METHODS = {**METHODS, **EXTENSION_METHODS}


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN) as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def space():
    return StrategySpace(include_quantization=True)


def apply_scheme(model, scheme, base_params):
    """Run the real surgery for ``scheme`` on ``model`` (no training)."""
    ctx = ExecutionContext(original_params=base_params, train_enabled=False)
    for strategy in scheme:
        ALL_METHODS[strategy.method_label].apply(model, strategy.hp, ctx)
    return model


# --------------------------------------------------------------------------- #
# Exactness on base models
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", available_models())
def test_base_model_exact(name):
    model = create_model(name)
    measured = profile_model(model)
    predicted = SchemeCostModel(model).base_prediction
    assert predicted.params == measured.params
    assert predicted.flops == measured.flops
    assert predicted.act_mem > 0
    assert predicted.latency_ms > 0


# --------------------------------------------------------------------------- #
# Post-scheme tolerance, pinned per golden
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", available_models())
def test_post_scheme_within_tolerance(name, golden, space):
    base = create_model(name)
    cost_model = SchemeCostModel(base)
    for text in golden["scheme_battery"]:
        scheme = space.parse_scheme(text)
        measured = profile_model(
            apply_scheme(copy.deepcopy(base), scheme, cost_model.base_params)
        )
        predicted = cost_model.predict(scheme)
        drift_params = 100.0 * abs(predicted.params - measured.params) / measured.params
        drift_flops = 100.0 * abs(predicted.flops - measured.flops) / measured.flops
        assert drift_params <= golden["params_pct"], (name, text, drift_params)
        assert drift_flops <= golden["flops_pct"], (name, text, drift_flops)


def test_quantization_affects_weight_memory_only(space):
    model = resnet20(num_classes=10)
    cost_model = SchemeCostModel(model)
    scheme = space.parse_scheme("C7[HP1=0.1,HP17=5,HP18=0.5]")
    base = cost_model.base_prediction
    predicted = cost_model.predict(scheme)
    assert predicted.params == base.params
    assert predicted.flops == base.flops
    assert predicted.weight_bits == 5
    assert predicted.weight_mem < base.weight_mem


# --------------------------------------------------------------------------- #
# Budgets and S-rules
# --------------------------------------------------------------------------- #
def test_budget_null_and_payload_roundtrip():
    assert Budget().is_null
    budget = Budget(max_params=100, max_latency_ms=1.5)
    assert not budget.is_null
    assert Budget.from_payload(budget.to_payload()) == budget
    assert Budget.from_payload(None) is None


def test_s_rules_fire_per_dimension(space):
    cost_model = SchemeCostModel(resnet20(num_classes=10))
    scheme = space.parse_scheme("C3[HP1=0.1,HP2=0.12,HP6=0.7]")
    prediction = cost_model.predict(scheme)
    budget = Budget(
        max_params=prediction.params - 1,
        max_flops=prediction.flops - 1,
        max_act_mem=prediction.act_mem - 1,
        max_latency_ms=prediction.latency_ms / 2,
    )
    report = lint_scheme(scheme, budget=budget, cost_model=cost_model)
    assert {d.rule for d in report.errors} == {"S001", "S002", "S003", "S004"}
    # A generous budget is clean.
    ok = lint_scheme(
        scheme, budget=Budget(max_params=prediction.params), cost_model=cost_model
    )
    assert not ok.has_errors


def test_s_rules_skipped_when_l_rules_fail(space):
    """Malformed schemes are not cost-predicted (L-rules short-circuit)."""
    scheme = space.parse_scheme(
        "C3[HP1=0.1,HP2=0.44,HP6=0.9] -> C3[HP1=0.1,HP2=0.44,HP6=0.9]"
        " -> C3[HP1=0.1,HP2=0.44,HP6=0.9]"
    )
    cost_model = SchemeCostModel(resnet20(num_classes=10))
    report = lint_scheme(
        scheme, budget=Budget(max_params=1), cost_model=cost_model
    )
    assert report.has_errors
    assert not any(d.rule.startswith("S") for d in report.errors)


# --------------------------------------------------------------------------- #
# Evaluator integration: rejection costs nothing
# --------------------------------------------------------------------------- #
def make_evaluator(budget=None, seed=0):
    from repro.core.evaluator import SurrogateEvaluator

    task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
    return SurrogateEvaluator(
        lambda: resnet20(num_classes=10),
        "resnet20",
        "cifar10",
        task,
        config=EvaluatorConfig(seed=seed, budget=budget),
    )


def tight_budget():
    """Rejects shallow schemes on resnet20 (base 272k params)."""
    return Budget(max_params=170_000)


def test_budget_rejection_is_free(space):
    evaluator = make_evaluator(budget=tight_budget())
    shallow = space.parse_scheme("C3[HP1=0.1,HP2=0.12,HP6=0.7]")
    before = evaluator.total_cost
    with pytest.raises(SchemeRejected) as excinfo:
        evaluator.evaluate(shallow)
    assert any(d.rule == "S001" for d in excinfo.value.report.errors)
    assert evaluator.total_cost == before
    assert evaluator.budget_rejects == 1
    assert evaluator.rejected_count == 1
    # A deep-enough scheme passes and gets a drift record.
    deep = space.parse_scheme("C3[HP1=0.1,HP2=0.44,HP6=0.9]")
    assert evaluator.is_feasible(deep)
    result = evaluator.evaluate(deep)
    assert result.params <= 170_000
    drift = evaluator.prediction_drift()
    assert drift["predicted_evals"] >= 1
    assert drift["drift_params_pct"] < 5.0


def test_is_feasible_counts_filtered(space):
    evaluator = make_evaluator(budget=tight_budget())
    shallow = space.parse_scheme("C3[HP1=0.1,HP2=0.12,HP6=0.7]")
    assert not evaluator.is_feasible(shallow)
    assert evaluator.budget_filtered == 1
    assert evaluator.total_cost == 0.0


def test_set_budget_round_trip(space):
    evaluator = make_evaluator()
    shallow = space.parse_scheme("C3[HP1=0.1,HP2=0.12,HP6=0.7]")
    assert evaluator.is_feasible(shallow)
    evaluator.set_budget(tight_budget())
    assert not evaluator.is_feasible(shallow)
    evaluator.set_budget(None)
    assert evaluator.budget is None
    assert evaluator.is_feasible(shallow)


def test_budget_excluded_from_fingerprint():
    plain = make_evaluator().config.fingerprint_payload()
    budgeted = make_evaluator(budget=tight_budget()).config.fingerprint_payload()
    assert plain == budgeted


# --------------------------------------------------------------------------- #
# Pruned search == post-hoc filtered search
# --------------------------------------------------------------------------- #
def sample_schemes(space, count=30, seed=7):
    """Uniform scheme draws, mirroring SearchStrategy.random_scheme."""
    import numpy as np

    from repro.space.scheme import CompressionScheme

    rng = np.random.default_rng(seed)
    schemes = []
    while len(schemes) < count:
        length = int(rng.integers(1, 6))
        scheme = CompressionScheme()
        for _ in range(length):
            for _ in range(20):
                strategy = space[int(rng.integers(0, len(space)))]
                if scheme.total_param_step + strategy.param_step <= 0.9:
                    scheme = scheme.extend(strategy)
                    break
        if not scheme.is_empty:
            schemes.append(scheme)
    return schemes


def test_static_pruning_matches_posthoc_filter():
    """A budget kills >=30% of candidates for free; survivors' results are
    bit-identical to evaluating everything and filtering afterwards."""
    space = StrategySpace()
    budget = Budget(max_params=130_000)  # ~52% PR floor on resnet20
    schemes = sample_schemes(space)

    unbudgeted = make_evaluator()
    all_results = unbudgeted.evaluate_many(schemes)
    cost_model = unbudgeted.cost_model
    keep = [cost_model.feasible(s, budget) for s in schemes]
    survivors = [s for s, ok in zip(schemes, keep) if ok]
    rejected = len(schemes) - len(survivors)
    assert rejected / len(schemes) >= 0.30

    budgeted = make_evaluator(budget=budget)
    assert [budgeted.is_feasible(s) for s in schemes] == keep
    pruned_results = budgeted.evaluate_many(survivors)
    posthoc = {r.scheme.identifier: r for r in all_results}
    for result in pruned_results:
        other = posthoc[result.scheme.identifier]
        assert result.accuracy == other.accuracy
        assert result.params == other.params
        assert result.flops == other.flops
        assert result.cost == other.cost
    # and the budget charged nothing for the rejected candidates
    assert budgeted.total_cost == pytest.approx(
        sum(r.cost for r in pruned_results)
    )


def test_search_strategy_feasible_counter():
    from repro.core.search import SearchStrategy

    space = StrategySpace()
    evaluator = make_evaluator(budget=tight_budget())
    searcher = SearchStrategy(evaluator, space)
    shallow = space.parse_scheme("C3[HP1=0.1,HP2=0.12,HP6=0.7]")
    deep = space.parse_scheme("C3[HP1=0.1,HP2=0.44,HP6=0.9]")
    assert searcher.feasible(deep)
    assert not searcher.feasible(shallow)
    assert searcher.budget_pruned == 1


def test_random_search_prunes_statically(tmp_path):
    """RandomSearch under a budget: pruning is free and journaled."""
    from repro.baselines import RandomSearch
    from repro.obs import RunJournal, Tracer, attach_tracer

    journal = tmp_path / "run.jsonl"
    evaluator = make_evaluator(budget=Budget(max_params=130_000))
    tracer = Tracer(journal=RunJournal(str(journal)))
    attach_tracer(evaluator, tracer)
    searcher = RandomSearch(
        evaluator, StrategySpace(), gamma=0.3, budget_hours=1.0, seed=3
    )
    result = searcher.run()
    tracer.close()
    assert searcher.budget_pruned > 0
    assert evaluator.budget_filtered == searcher.budget_pruned
    for r in result.all_results:
        assert r.params <= 130_000
    text = journal.read_text()
    assert "budget_filter" in text
    assert "predicted_params" in text


def test_experiment_config_budget():
    from repro.experiments.common import ExperimentConfig

    assert ExperimentConfig().budget() is None
    config = ExperimentConfig(max_params=123, max_latency_ms=2.0)
    budget = config.budget()
    assert budget == Budget(max_params=123, max_latency_ms=2.0)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def test_cli_analyze_space(capsys):
    from repro.cli import main

    code = main([
        "analyze", "space", "--target-model", "resnet20",
        "--max-params", "150000", "--max-flops", "40000000",
        "--samples", "60",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "statically eliminated" in out
    assert "S001" in out or "S002" in out


def test_cli_analyze_space_needs_a_cap(capsys):
    from repro.cli import main

    assert main(["analyze", "space"]) == 2


def test_cli_analyze_scheme_with_budget(capsys):
    from repro.cli import main

    code = main([
        "analyze", "resnet20", "--scheme", "C3[HP1=0.5,HP2=0.2,HP6=0.9]",
        "--max-params", "100000",
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "S001" in out
