"""Tests for the human-baseline grid-search runner."""

import pytest

from repro.baselines.grid import run_all_human_methods, run_human_method
from repro.core.evaluator import SurrogateEvaluator
from repro.data.tasks import EXP1, transfer_task
from repro.models import resnet20


@pytest.fixture(scope="module")
def evaluator():
    task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
    return SurrogateEvaluator(
        lambda: resnet20(num_classes=10), "resnet20", "cifar10", task, seed=0
    )


class TestRunHumanMethod:
    def test_hits_exact_target_outside_grid(self, evaluator):
        """Human baselines may use HP2 = 0.4 even though the search grid
        tops out at 0.44 in other values."""
        outcome = run_human_method(evaluator, "C3", 0.4, max_evaluations=4)
        assert outcome.best.pr == pytest.approx(0.4, abs=0.06)
        assert outcome.best.scheme.length == 1

    def test_grid_cap_respected(self, evaluator):
        outcome = run_human_method(evaluator, "C5", 0.4, max_evaluations=5)
        assert outcome.evaluations <= 5

    def test_best_is_best_of_evaluated(self, evaluator):
        outcome = run_human_method(evaluator, "C2", 0.4, max_evaluations=6)
        same_method = [
            r for r in evaluator.results.values()
            if r.scheme.length == 1
            and r.scheme.strategies[0].method_label == "C2"
            and abs(r.scheme.strategies[0].param_step - 0.4) < 1e-9
        ]
        assert outcome.best.accuracy == max(r.accuracy for r in same_method)

    def test_fine_tune_pinned_generous(self, evaluator):
        outcome = run_human_method(evaluator, "C2", 0.4, max_evaluations=2)
        assert outcome.best.scheme.strategies[0].hp["HP1"] == 0.5

    def test_sfp_uses_hp9(self, evaluator):
        outcome = run_human_method(evaluator, "C4", 0.4, max_evaluations=3)
        hp = outcome.best.scheme.strategies[0].hp
        assert hp["HP9"] == 0.5
        assert "HP1" not in hp


class TestRunAll:
    def test_covers_all_methods(self, evaluator):
        outcomes = run_all_human_methods(evaluator, 0.4, max_evaluations_per_method=2)
        assert [o.method_label for o in outcomes] == ["C1", "C2", "C3", "C4", "C5", "C6"]
        for outcome in outcomes:
            assert outcome.target_pr == 0.4
