"""Tests for the one-shot full-report runner."""

import json
import os

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.report import run_full_report

TINY = ExperimentConfig(
    budget_hours=0.5,
    grid_evals_per_method=2,
    embedding_rounds=1,
    transr_epochs_per_round=1,
    nn_exp_epochs_per_round=3,
    sample_size=2,
    evals_per_round=2,
    candidate_subsample=48,
    seed=0,
)


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("reports"))
    return run_full_report(TINY, output_dir=out)


class TestFullReport:
    def test_all_artifacts_written(self, report):
        expected = {
            "table2.txt", "table2_vs_paper.txt", "table3.txt",
            "figure4.txt", "figure6.txt", "attribution.txt",
            "table2.json", "table3.json",
        }
        assert expected <= set(report.artifacts)
        for path in report.artifacts.values():
            assert os.path.exists(path)
            assert os.path.getsize(path) > 0

    def test_figure5_opt_in(self, report):
        assert report.figure5 is None
        assert "figure5.txt" not in report.artifacts

    def test_json_artifacts_parse(self, report):
        with open(report.artifacts["table2.json"]) as handle:
            payload = json.load(handle)
        assert "rows" in payload and "baselines" in payload
        assert payload["baselines"]["Exp1"]["accuracy"] == pytest.approx(0.9104, abs=1e-6)

    def test_searches_shared_not_rerun(self, report):
        """Figure 4/6 reuse Table 2's search objects (no duplicate runs)."""
        for exp, searches in report.table2.search_results.items():
            assert report.figure4.searches[exp]["AutoMC"] is searches["AutoMC"]
            assert report.figure6.searches[exp] is searches["AutoMC"]

    def test_summary_lists_artifacts(self, report):
        text = report.summary()
        assert "table2.txt" in text and "->" in text

    def test_attribution_rows_cover_all_searches(self, report):
        with open(report.artifacts["attribution.txt"]) as handle:
            text = handle.read()
        for exp, searches in report.table2.search_results.items():
            assert exp in text
            for algo in searches:
                assert algo in text
        assert "sec/eval" in text
