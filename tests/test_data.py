"""Tests for synthetic datasets and task descriptors."""

import numpy as np
import pytest

from repro.data import (
    EXP1,
    EXP2,
    SyntheticImageDataset,
    synthetic_cifar10,
    task_from_dataset,
    tiny_dataset,
    transfer_task,
)


class TestSyntheticDataset:
    def test_shapes(self):
        data = SyntheticImageDataset(num_classes=5, num_samples=50, image_size=16)
        assert len(data) == 50
        x, y = data[0]
        assert x.shape == (3, 16, 16)
        assert 0 <= y < 5

    def test_standardised(self):
        data = synthetic_cifar10(num_samples=256)
        assert abs(data.images.mean()) < 0.05
        assert abs(data.images.std() - 1.0) < 0.05

    def test_deterministic_by_seed(self):
        a = tiny_dataset(seed=7)
        b = tiny_dataset(seed=7)
        np.testing.assert_array_equal(a.images, b.images)
        c = tiny_dataset(seed=8)
        assert np.abs(a.images - c.images).sum() > 0

    def test_all_classes_present(self):
        data = SyntheticImageDataset(num_classes=10, num_samples=100)
        assert set(np.unique(data.labels)) == set(range(10))

    def test_requires_one_sample_per_class(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset(num_classes=10, num_samples=5)

    def test_learnable_signal(self):
        """Same-class images must correlate more than cross-class ones."""
        data = SyntheticImageDataset(num_classes=2, num_samples=40, noise=0.1, seed=0)
        flat = data.images.reshape(len(data), -1)
        flat = flat / np.linalg.norm(flat, axis=1, keepdims=True)
        sims = flat @ flat.T
        same = sims[data.labels[:, None] == data.labels[None, :]].mean()
        cross = sims[data.labels[:, None] != data.labels[None, :]].mean()
        assert same > cross + 0.1


class TestBatching:
    def test_iter_batches_covers_everything(self):
        data = tiny_dataset(num_samples=50)
        total = sum(len(y) for _, y in data.iter_batches(16))
        assert total == 50

    def test_with_indices(self):
        data = tiny_dataset(num_samples=40)
        for x, y, idx in data.iter_batches(8, with_indices=True):
            np.testing.assert_array_equal(data.labels[idx], y)

    def test_shuffle_changes_order(self):
        data = tiny_dataset(num_samples=64)
        first = next(iter(data.iter_batches(64, shuffle=False)))[1]
        shuffled = next(
            iter(data.iter_batches(64, shuffle=True, rng=np.random.default_rng(1)))
        )[1]
        assert not np.array_equal(first, shuffled)


class TestSplitsAndSubsampling:
    def test_split_fractions(self):
        data = tiny_dataset(num_samples=100)
        a, b = data.split(0.75, seed=0)
        assert len(a) == 75 and len(b) == 25

    def test_split_disjoint(self):
        data = tiny_dataset(num_samples=60)
        a, b = data.split(0.5, seed=0)
        # Images are unique per index, so row-wise comparison detects overlap.
        a_rows = {img.tobytes() for img in a.images}
        b_rows = {img.tobytes() for img in b.images}
        assert not (a_rows & b_rows)

    def test_subsample_stratified(self):
        data = SyntheticImageDataset(num_classes=4, num_samples=200, seed=0)
        sub = data.subsample(0.1, seed=0)
        counts = np.bincount(sub.labels, minlength=4)
        assert (counts >= 1).all()
        assert len(sub) == pytest.approx(20, abs=4)


class TestTasks:
    def test_feature_vector_length(self):
        assert EXP1.feature_vector().shape == (7,)
        assert EXP2.feature_vector().shape == (7,)

    def test_exp_constants_match_paper(self):
        assert EXP1.model_name == "resnet56" and EXP1.num_classes == 10
        assert EXP2.model_name == "vgg16" and EXP2.num_classes == 100
        assert EXP1.model_accuracy == pytest.approx(0.9104)
        assert EXP2.model_accuracy == pytest.approx(0.7003)

    def test_task_from_dataset(self, tiny_data, trained_resnet8):
        train, _ = tiny_data
        task = task_from_dataset(train, trained_resnet8, "resnet8", 0.8)
        assert task.num_classes == train.num_classes
        assert task.model_params > 0

    def test_transfer_task_keeps_dataset(self):
        moved = transfer_task(EXP1, "resnet20", 0.27, 0.08, 0.913)
        assert moved.num_classes == EXP1.num_classes
        assert moved.model_name == "resnet20"
        assert "resnet20" in moved.name
