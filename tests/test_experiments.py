"""Smoke tests for the Table/Figure harnesses (tiny budgets).

These verify structure and plumbing — the real shape checks run in
``benchmarks/`` with larger budgets.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    run_figure4,
    run_figure6,
    run_table2,
    run_table3,
)
from repro.experiments.table2 import AUTOML_ALGORITHMS, HUMAN_NAMES

TINY = ExperimentConfig(
    budget_hours=0.6,
    grid_evals_per_method=2,
    embedding_rounds=1,
    transr_epochs_per_round=1,
    nn_exp_epochs_per_round=3,
    sample_size=2,
    evals_per_round=2,
    candidate_subsample=48,
    seed=0,
)


@pytest.fixture(scope="module")
def table2():
    return run_table2(TINY)


class TestTable2:
    def test_all_rows_present(self, table2):
        algorithms = set(HUMAN_NAMES.values()) | set(AUTOML_ALGORITHMS)
        for exp in EXPERIMENTS:
            for block in ("~40", "~70"):
                present = {
                    row.algorithm
                    for row in table2.rows
                    if row.experiment == exp and row.block == block
                }
                assert present == algorithms

    def test_human_rows_near_targets(self, table2):
        for row in table2.rows:
            if row.algorithm in HUMAN_NAMES.values() and row.result is not None:
                target = 0.4 if row.block == "~40" else 0.7
                if row.algorithm == "LFB":
                    # LFB's factorisation savings saturate below deep targets
                    # (the paper's own Table 2 has LFB at PR 57.4 in the ~70
                    # block on VGG-16).
                    assert row.result.pr >= target - 0.25
                else:
                    assert row.result.pr == pytest.approx(target, abs=0.12)

    def test_format_is_printable(self, table2):
        text = table2.format()
        assert "Exp1" in text and "Exp2" in text and "baseline" in text

    def test_baselines_match_calibration(self, table2):
        assert table2.base["Exp1"].accuracy == pytest.approx(0.9104, abs=1e-6)
        assert table2.base["Exp2"].accuracy == pytest.approx(0.7003, abs=1e-6)


class TestTable3:
    def test_structure(self, table2):
        table3 = run_table3(TINY, table2=table2)
        models = {c.model for c in table3.cells}
        assert models == {"resnet20", "resnet56", "resnet164", "vgg13", "vgg16", "vgg19"}
        text = table3.format()
        assert "Table 3" in text

    def test_human_cells_on_every_model(self, table2):
        table3 = run_table3(TINY, table2=table2)
        for model in ("resnet20", "vgg19"):
            cells = [c for c in table3.cells if c.model == model and c.result]
            assert len(cells) >= 6  # six human methods at least


class TestFigures:
    def test_figure4_series(self, table2):
        fig = run_figure4(TINY, searches=table2.search_results)
        assert len(fig.series) == len(EXPERIMENTS) * len(AUTOML_ALGORITHMS)
        for series in fig.series:
            assert series.trajectory
        assert "Figure 4" in fig.format()

    def test_figure6_schemes(self, table2):
        fig = run_figure6(TINY, searches={
            exp: table2.search_results[exp]["AutoMC"] for exp in EXPERIMENTS
        })
        text = fig.format()
        assert "Figure 6" in text
        for scheme in fig.schemes:
            assert scheme.result.scheme.length >= 1

    def test_figure5_variants_smoke(self):
        # Only check the two cheapest variants wire up end to end: a full
        # 5-variant run is a benchmark, not a unit test.
        from repro.core.ablation import build_variant
        from repro.experiments.common import make_evaluator

        model_name, dataset_name, task = EXPERIMENTS["Exp1"]
        for variant in ("AutoMC-MultipleSource", "AutoMC-ProgressiveSearch"):
            evaluator = make_evaluator(model_name, dataset_name, task)
            searcher = build_variant(
                variant, evaluator, gamma=0.3, budget_hours=0.4,
                embedding_rounds=1,
                progressive_config=TINY.progressive_config(),
            )
            result = searcher.run()
            assert result.evaluations >= 1
