"""Tests for the Module system and layers."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Embedding,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Tensor,
)


class TestModuleSystem:
    def test_named_parameters_traversal(self):
        net = Sequential(Conv2d(3, 4, 3), BatchNorm2d(4), Linear(4, 2))
        names = dict(net.named_parameters())
        assert "0.weight" in names and "0.bias" in names
        assert "1.gamma" in names and "1.beta" in names
        assert "2.weight" in names

    def test_num_parameters(self):
        layer = Linear(10, 5)
        assert layer.num_parameters() == 10 * 5 + 5

    def test_train_eval_propagates(self):
        net = Sequential(BatchNorm2d(2), Sequential(BatchNorm2d(3)))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad_clears(self):
        layer = Linear(3, 2)
        out = layer(Tensor(np.ones((1, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = Sequential(Conv2d(2, 3, 3), BatchNorm2d(3))
        b = Sequential(Conv2d(2, 3, 3, rng=np.random.default_rng(9)), BatchNorm2d(3))
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_state_dict_includes_buffers(self):
        bn = BatchNorm2d(3)
        bn.running_mean[:] = 7.0
        state = bn.state_dict()
        np.testing.assert_allclose(state["running_mean"], 7.0)
        fresh = BatchNorm2d(3)
        fresh.load_state_dict(state)
        np.testing.assert_allclose(fresh.running_mean, 7.0)

    def test_load_state_dict_shape_mismatch(self):
        a, b = Linear(3, 2), Linear(4, 2)
        with pytest.raises(ValueError, match="shape mismatch"):
            b.load_state_dict(a.state_dict())

    def test_load_state_dict_missing_key(self):
        layer = Linear(3, 2)
        with pytest.raises(KeyError):
            layer.load_state_dict({})


class TestConv2dLayer:
    def test_channels_follow_weight_shape(self):
        conv = Conv2d(3, 8, 3)
        assert conv.in_channels == 3 and conv.out_channels == 8
        conv.weight.data = conv.weight.data[:4]  # simulated surgery
        assert conv.out_channels == 4

    def test_no_bias_option(self):
        conv = Conv2d(3, 4, 3, bias=False)
        assert conv.bias is None
        assert conv.num_parameters() == 4 * 3 * 9

    def test_forward_shape(self, rng):
        conv = Conv2d(3, 6, 3, stride=2, padding=1, rng=rng)
        out = conv(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 6, 4, 4)


class TestLinearLayer:
    def test_forward(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 3)

    def test_features_follow_weight_shape(self):
        layer = Linear(6, 2)
        layer.weight.data = layer.weight.data[:, :3]
        assert layer.in_features == 3


class TestOtherLayers:
    def test_batchnorm_num_features_tracks_surgery(self):
        bn = BatchNorm2d(8)
        bn.gamma.data = bn.gamma.data[:5]
        assert bn.num_features == 5

    def test_relu_identity_pool_flatten(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4, 4)))
        assert (ReLU()(x).data >= 0).all()
        np.testing.assert_allclose(Identity()(x).data, x.data)
        assert MaxPool2d(2)(x).shape == (2, 3, 2, 2)
        assert GlobalAvgPool2d()(x).shape == (2, 3)
        assert Flatten()(x).shape == (2, 48)

    def test_sequential_indexing_and_iteration(self):
        net = Sequential(ReLU(), Identity(), Flatten())
        assert isinstance(net[0], ReLU)
        assert isinstance(net[-1], Flatten)
        assert len(net) == 3
        assert len(list(net)) == 3

    def test_embedding_lookup_and_grad(self):
        table = Embedding(10, 4)
        out = table(np.array([1, 1, 3]))
        assert out.shape == (3, 4)
        out.sum().backward()
        assert table.weight.grad[1].sum() == pytest.approx(8.0)  # two lookups
        assert table.weight.grad[0].sum() == 0.0
