"""Tests for the disk-backed model-snapshot store and prefix-affinity engine.

Covers PR 5's acceptance criteria: the snapshot tier never changes results
or charged costs (serial ≡ parallel ≡ snapshot-resumed, bit for bit), a
cross-run warm start replays zero prefix steps, eviction respects the byte
budget, corruption falls back to a replay, and the prefix-affinity
scheduler groups/chunks batches deterministically.
"""

import os

import pytest

from repro.core import (
    EvaluationEngine,
    EvaluatorConfig,
    ModelSnapshot,
    ModelSnapshotStore,
    SurrogateEvaluator,
    TrainingEvaluator,
    plan_prefix_groups,
)
from repro.core.engine import DEFAULT_CACHE_ENTRIES, ResultCache
from repro.data.datasets import tiny_dataset
from repro.data.tasks import EXP1, transfer_task
from repro.models import resnet20
from repro.space import CompressionScheme, StrategySpace

TASK = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)


def make_surrogate(snapshot_dir=None, budget_mb=None, seed=0):
    return SurrogateEvaluator(
        lambda: resnet20(num_classes=10),
        "resnet20",
        "cifar10",
        TASK,
        config=EvaluatorConfig(
            seed=seed,
            snapshot_dir=None if snapshot_dir is None else str(snapshot_dir),
            snapshot_budget_mb=budget_mb,
        ),
    )


@pytest.fixture(scope="module")
def space():
    return StrategySpace()


@pytest.fixture(scope="module")
def family(space):
    """Two parents and four children — the progressive-search batch shape."""
    c3 = space.of_method("C3")
    c2 = space.of_method("C2")
    p1 = CompressionScheme((c3[4],))
    p2 = CompressionScheme((c2[2],))
    parents = [p1, p2]
    children = [
        p1.extend(c3[8]),
        p1.extend(c3[11]),
        p2.extend(c3[4]),
        p2.extend(c3[8]),
    ]
    return parents, children


def assert_results_identical(a, b):
    assert a.scheme.identifier == b.scheme.identifier
    assert a.accuracy == b.accuracy
    assert a.params == b.params
    assert a.flops == b.flops
    assert a.cost == b.cost
    assert a.step_costs == b.step_costs


# --------------------------------------------------------------------------- #
class TestSnapshotStore:
    def test_round_trip_preserves_model_and_metadata(self, tmp_path, space):
        c3 = space.of_method("C3")
        evaluator = make_surrogate()
        scheme = CompressionScheme((c3[4],))
        result = evaluator.evaluate(scheme)
        model = evaluator._model_cache[scheme.identifier].model

        store = ModelSnapshotStore(tmp_path, evaluator.fingerprint())
        store.put(
            ModelSnapshot(
                scheme.identifier, model, 0.5,
                list(result.step_reports), list(result.step_costs),
            )
        )
        assert scheme.identifier in store
        loaded = store.get(scheme.identifier)
        assert loaded is not None
        assert loaded.accuracy == 0.5
        assert loaded.step_costs == result.step_costs
        got = loaded.model.state_dict()
        for name, value in model.state_dict().items():
            assert (got[name] == value).all()

    def test_corrupted_snapshot_is_a_miss_and_deleted(self, tmp_path):
        store = ModelSnapshotStore(tmp_path, "f" * 40)
        path = store._path("some -> scheme")
        path.write_bytes(b"not a pickle at all")
        assert store.get("some -> scheme") is None
        assert store.misses == 1
        assert not path.exists()

    def test_eviction_respects_byte_budget(self, tmp_path, space):
        c3 = space.of_method("C3")
        evaluator = make_surrogate()
        evaluator.evaluate(CompressionScheme((c3[4],)))
        model = evaluator._model_cache[
            CompressionScheme((c3[4],)).identifier
        ].model
        probe = ModelSnapshotStore(tmp_path / "probe", "a" * 40)
        probe.put(ModelSnapshot("probe", model, 0.0))
        one_size = probe.stats()["bytes"]

        store = ModelSnapshotStore(
            tmp_path / "capped", "b" * 40, budget_bytes=int(2.5 * one_size)
        )
        for i in range(5):
            store.put(ModelSnapshot(f"snap-{i}", model, 0.0))
            os.utime(store._path(f"snap-{i}"), (i + 1, i + 1))
        stats = store.stats()
        assert stats["bytes"] <= store.budget_bytes
        assert stats["evictions"] >= 1
        # oldest gone, newest kept
        assert "snap-0" not in store
        assert "snap-4" in store

    def test_sole_snapshot_survives_tiny_budget(self, tmp_path, space):
        c3 = space.of_method("C3")
        evaluator = make_surrogate()
        evaluator.evaluate(CompressionScheme((c3[4],)))
        model = evaluator._model_cache[
            CompressionScheme((c3[4],)).identifier
        ].model
        store = ModelSnapshotStore(tmp_path, "c" * 40, budget_bytes=1)
        store.put(ModelSnapshot("only", model, 0.0))
        assert "only" in store  # the just-written snapshot is never evicted


# --------------------------------------------------------------------------- #
class TestSnapshotResume:
    def test_cross_run_warm_start_replays_zero_prefix_steps(
        self, tmp_path, family
    ):
        parents, children = family
        reference = make_surrogate()
        expected = {
            s.identifier: reference.evaluate(s) for s in parents + children
        }

        first = make_surrogate(tmp_path)
        for scheme in parents:
            first.evaluate(scheme)
        assert first.steps_executed == len(parents)

        # fresh process equivalent: new evaluator, empty memory caches
        second = make_surrogate(tmp_path)
        for child in children:
            result = second.evaluate(child)
            reference_result = expected[child.identifier]
            assert result.accuracy == reference_result.accuracy
            assert result.params == reference_result.params
            assert result.step_costs == reference_result.step_costs
        # every child resumed its 1-step parent prefix from disk: only the
        # final step of each child ran, zero prefix steps were replayed
        assert second.steps_executed == len(children)
        assert second.snapshot_hits == len(parents)
        assert second.snapshot_steps_saved == len(parents)

    def test_charged_costs_unchanged_by_snapshots(self, tmp_path, family):
        parents, children = family
        plain = make_surrogate()
        for scheme in parents + children:
            plain.evaluate(scheme)

        warmed = make_surrogate(tmp_path)
        for scheme in parents:
            warmed.evaluate(scheme)
        resumed = make_surrogate(tmp_path)  # cold caches, warm disk
        for scheme in parents + children:
            resumed.evaluate(scheme)
        # charging is a function of the results history only — snapshot
        # resumes must not discount (or double-charge) anything
        assert resumed.total_cost == plain.total_cost
        for identifier, result in plain.results.items():
            assert resumed.results[identifier].cost == result.cost

    def test_corrupted_snapshot_falls_back_to_replay(self, tmp_path, family):
        parents, children = family
        reference = make_surrogate()
        expected = reference.evaluate(children[0])

        first = make_surrogate(tmp_path)
        first.evaluate(parents[0])
        # corrupt every snapshot on disk
        store = first.snapshot_store
        corrupted = 0
        for name in os.listdir(store.root):
            if name.endswith(".snap"):
                (store.root / name).write_bytes(b"\x00garbage")
                corrupted += 1
        assert corrupted > 0

        second = make_surrogate(tmp_path)
        result = second.evaluate(children[0])
        assert result.accuracy == expected.accuracy
        assert result.step_costs == expected.step_costs
        assert second.snapshot_hits == 0
        assert second.steps_executed == children[0].length  # full replay

    def test_training_backend_resumes_bit_identically(self, tmp_path, space):
        train = tiny_dataset(num_classes=4, num_samples=32, image_size=8, seed=1)
        val = tiny_dataset(num_classes=4, num_samples=16, image_size=8, seed=2)
        c3 = space.of_method("C3")
        parent = CompressionScheme((c3[4],))
        child = parent.extend(c3[8])

        def make(snap=None):
            return TrainingEvaluator(
                "resnet8", train, val,
                config=EvaluatorConfig(
                    pretrain_epochs=1.0, seed=5,
                    snapshot_dir=None if snap is None else str(snap),
                ),
            )

        reference = make()
        expected = reference.evaluate(child)

        make(tmp_path).evaluate(parent)
        resumed = make(tmp_path)
        result = resumed.evaluate(child)
        assert result.accuracy == expected.accuracy
        assert result.params == expected.params
        assert result.step_costs == expected.step_costs
        assert resumed.snapshot_hits == 1
        assert resumed.steps_executed == 1


# --------------------------------------------------------------------------- #
class TestEngineWithSnapshots:
    def test_serial_parallel_bit_identical_with_store(self, tmp_path, family):
        parents, children = family
        batch = parents + children
        serial = EvaluationEngine(make_surrogate(), workers=0)
        with EvaluationEngine(
            make_surrogate(tmp_path / "snaps"), workers=2
        ) as parallel:
            for a, b in zip(
                serial.evaluate_many(batch), parallel.evaluate_many(batch)
            ):
                assert_results_identical(a, b)
            assert serial.total_cost == parallel.total_cost
            assert serial.evaluation_count == parallel.evaluation_count

    def test_cold_lanes_resume_from_shared_store(self, tmp_path, family):
        parents, children = family
        # reference: an engine whose history also holds only the children,
        # so charged costs are comparable (charging follows results history)
        reference = EvaluationEngine(make_surrogate(), workers=0)
        expected = {
            r.scheme.identifier: r for r in reference.evaluate_many(children)
        }

        snap = tmp_path / "snaps"
        first = EvaluationEngine(make_surrogate(snap), workers=2)
        first.evaluate_many(parents)
        first.close()  # worker LRUs die with the lanes

        second = EvaluationEngine(make_surrogate(snap), workers=2)
        with second:
            for result in second.evaluate_many(children):
                assert_results_identical(
                    result, expected[result.scheme.identifier]
                )
            # each child replayed only its own final step
            assert second.steps_replayed == len(children)
            assert second.snapshot_hits >= 1
            assert second.snapshot_steps_saved >= 1


# --------------------------------------------------------------------------- #
class TestPrefixGrouping:
    def test_groups_by_shared_prefix_shortest_first(self, family):
        parents, children = family
        batch = [children[0], parents[0], children[2], parents[1], children[1]]
        groups = plan_prefix_groups(batch)
        assert len(groups) == 2
        for group in groups:
            # shortest-first within each family
            lengths = [s.length for s in group]
            assert lengths == sorted(lengths)
        by_head = {g[0].identifier: g for g in groups}
        assert parents[0].identifier in by_head
        assert parents[1].identifier in by_head
        assert len(by_head[parents[0].identifier]) == 3

    def test_unrelated_schemes_stay_singletons(self, space):
        c3 = space.of_method("C3")
        c2 = space.of_method("C2")
        batch = [
            CompressionScheme((c3[4],)),
            CompressionScheme((c2[2],)),
            CompressionScheme((c3[11],)),
        ]
        groups = plan_prefix_groups(batch)
        assert [len(g) for g in groups] == [1, 1, 1]

    def test_max_group_chunks_large_families(self, space):
        c3 = space.of_method("C3")
        base = CompressionScheme((c3[4],))
        batch = [base] + [base.extend(c3[i]) for i in range(6, 12)]
        groups = plan_prefix_groups(batch, max_group=3)
        assert [len(g) for g in groups] == [3, 3, 1]
        assert groups[0][0].identifier == base.identifier

    def test_deterministic_for_same_input(self, family):
        parents, children = family
        batch = parents + children
        a = plan_prefix_groups(batch, max_group=2)
        b = plan_prefix_groups(batch, max_group=2)
        assert [[s.identifier for s in g] for g in a] == [
            [s.identifier for s in g] for g in b
        ]


# --------------------------------------------------------------------------- #
class TestResultCacheCap:
    def test_put_prunes_oldest_beyond_cap(self, tmp_path, family):
        parents, children = family
        evaluator = make_surrogate()
        cache = ResultCache(tmp_path, evaluator.fingerprint(), max_entries=3)
        batch = parents + children
        for i, scheme in enumerate(batch):
            result = evaluator.evaluate(scheme)
            cache.put(result)
            # deterministic mtimes so "oldest" is well defined
            os.utime(cache._path(scheme.identifier), (i + 1, i + 1))
        assert cache.stats()["entries"] <= 3
        # newest survives, oldest pruned
        assert cache.get(batch[-1]) is not None
        assert cache.get(batch[0]) is None

    def test_default_cap_is_applied_by_engine(self, tmp_path):
        engine = EvaluationEngine(
            make_surrogate(), workers=0, cache_dir=tmp_path
        )
        assert engine.cache.max_entries == DEFAULT_CACHE_ENTRIES
        capped = EvaluationEngine(
            make_surrogate(), workers=0, cache_dir=tmp_path, cache_entries=7
        )
        assert capped.cache.max_entries == 7
