"""Tests for the NN_exp enhancement network in isolation."""

import numpy as np
import pytest

from repro.knowledge.experience import default_experience
from repro.knowledge.nn_exp import NNExp, enhance_embeddings, predict_performance
from repro.nn import Tensor
from repro.space import StrategySpace


@pytest.fixture(scope="module")
def small_space():
    return StrategySpace(method_labels=["C2", "C3"])


class TestNNExpNetwork:
    def test_forward_shape(self, rng):
        net = NNExp(embedding_dim=16)
        out = net(Tensor(rng.normal(size=(5, 16))), Tensor(rng.normal(size=(5, 7))))
        assert out.shape == (5, 2)

    def test_predict_performance_tiles_task(self, small_space, rng):
        net = NNExp(embedding_dim=8)
        table = rng.normal(size=(len(small_space), 8))
        task = rng.normal(size=7)
        out = predict_performance(net, table, np.array([0, 5, 9]), task)
        assert out.shape == (3, 2)


class TestEnhancement:
    def test_embeddings_change_only_for_matched(self, small_space, rng):
        table = rng.normal(0, 0.1, size=(len(small_space), 16))
        records = [r for r in default_experience() if r.method_label in ("C2", "C3")]
        result, net = enhance_embeddings(table, small_space, records, epochs=10, seed=0)
        assert result.matched_records == len(records)
        # Embedding of a strategy nobody reported on must be untouched...
        from repro.knowledge.experience import nearest_strategy

        touched = {nearest_strategy(small_space, r).index for r in records}
        untouched = next(i for i in range(len(small_space)) if i not in touched)
        np.testing.assert_array_equal(result.embeddings[untouched], table[untouched])
        # ...while matched ones moved.
        moved = next(iter(touched))
        assert not np.allclose(result.embeddings[moved], table[moved])

    def test_loss_decreases(self, small_space, rng):
        table = rng.normal(0, 0.1, size=(len(small_space), 16))
        records = [r for r in default_experience() if r.method_label == "C2"]
        result, _ = enhance_embeddings(table, small_space, records, epochs=40, seed=0)
        assert result.losses[-1] < result.losses[0]

    def test_no_matching_records_is_noop(self, small_space, rng):
        table = rng.normal(size=(len(small_space), 16))
        records = [r for r in default_experience() if r.method_label == "C5"]
        result, _ = enhance_embeddings(table, small_space, records, epochs=5)
        assert result.matched_records == 0
        np.testing.assert_array_equal(result.embeddings, table)

    def test_network_reusable_across_rounds(self, small_space, rng):
        table = rng.normal(0, 0.1, size=(len(small_space), 16))
        records = [r for r in default_experience() if r.method_label in ("C2", "C3")]
        result1, net = enhance_embeddings(table, small_space, records, epochs=10, seed=0)
        result2, net2 = enhance_embeddings(
            result1.embeddings, small_space, records, network=net, epochs=10, seed=0
        )
        assert net2 is net
        assert result2.losses[-1] <= result1.losses[0]
