"""Tests for optimizers and LR schedules."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, CosineSchedule, StepSchedule, Tensor
from repro.nn.layers import Parameter


def _quadratic_losses(optimizer_factory, steps=60):
    """Minimise ||w - target||^2 and return the loss curve."""
    w = Parameter(np.array([5.0, -3.0]))
    target = np.array([1.0, 2.0])
    opt = optimizer_factory([w])
    losses = []
    for _ in range(steps):
        diff = w - Tensor(target)
        loss = (diff * diff).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        losses.append(loss.item())
    return losses, w


class TestSGD:
    def test_converges_on_quadratic(self):
        losses, w = _quadratic_losses(lambda p: SGD(p, lr=0.1))
        assert losses[-1] < 1e-6
        np.testing.assert_allclose(w.data, [1.0, 2.0], atol=1e-3)

    def test_momentum_faster_than_plain(self):
        plain, _ = _quadratic_losses(lambda p: SGD(p, lr=0.02), steps=30)
        momentum, _ = _quadratic_losses(lambda p: SGD(p, lr=0.02, momentum=0.9), steps=30)
        assert momentum[-1] < plain[-1]

    def test_weight_decay_shrinks_weights(self):
        w = Parameter(np.array([10.0]))
        opt = SGD([w], lr=0.1, weight_decay=0.5)
        for _ in range(20):
            (w * 0.0).sum().backward()  # zero task gradient
            opt.step()
            w.zero_grad()
        assert abs(float(w.data[0])) < 10.0

    def test_skips_parameters_without_grad(self):
        w = Parameter(np.array([1.0]))
        opt = SGD([w], lr=0.1)
        opt.step()  # no grad — must not crash or move
        np.testing.assert_allclose(w.data, [1.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        losses, w = _quadratic_losses(lambda p: Adam(p, lr=0.2), steps=150)
        assert losses[-1] < 1e-3
        assert losses[-1] < losses[0] / 1e4

    def test_bias_correction_first_step_size(self):
        w = Parameter(np.array([0.0]))
        opt = Adam([w], lr=0.1)
        w.grad = np.array([1.0])
        opt.step()
        # With bias correction the first step is ~lr regardless of beta.
        assert float(w.data[0]) == pytest.approx(-0.1, abs=1e-6)


class TestSchedules:
    def test_cosine_decays_to_min(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineSchedule(opt, total_steps=10, lr_min=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-9)

    def test_cosine_monotone_decreasing(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineSchedule(opt, total_steps=20)
        rates = [sched.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_step_schedule(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = StepSchedule(opt, step_size=3, gamma=0.1)
        for _ in range(3):
            sched.step()
        assert opt.lr == pytest.approx(0.1)
        for _ in range(3):
            sched.step()
        assert opt.lr == pytest.approx(0.01)
