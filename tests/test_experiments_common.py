"""Tests for the experiment plumbing helpers."""

import pytest

from repro.core.evaluator import EvaluationResult
from repro.experiments.common import (
    EXPERIMENTS,
    TRANSFER_MODELS,
    ExperimentConfig,
    format_row,
    make_evaluator,
    pick_block,
    transfer_evaluator,
)
from repro.space import CompressionScheme


def _fake_result(pr: float, accuracy: float) -> EvaluationResult:
    base_params = 1_000_000
    return EvaluationResult(
        scheme=CompressionScheme(),
        params=int(base_params * (1 - pr)),
        flops=int(1e9 * (1 - pr)),
        accuracy=accuracy,
        base_params=base_params,
        base_flops=int(1e9),
        base_accuracy=0.9,
        cost=0.1,
    )


class TestPickBlock:
    def test_prefers_in_range_best_accuracy(self):
        results = [_fake_result(0.35, 0.90), _fake_result(0.45, 0.92), _fake_result(0.75, 0.95)]
        chosen = pick_block(results, 0.30, 0.55)
        assert chosen.accuracy == pytest.approx(0.92)

    def test_fallback_above_low(self):
        results = [_fake_result(0.75, 0.91), _fake_result(0.85, 0.89)]
        chosen = pick_block(results, 0.30, 0.55)
        assert chosen.accuracy == pytest.approx(0.91)

    def test_no_fallback_returns_none(self):
        results = [_fake_result(0.75, 0.91)]
        assert pick_block(results, 0.30, 0.55, fallback=False) is None

    def test_nothing_feasible(self):
        results = [_fake_result(0.1, 0.95)]
        assert pick_block(results, 0.30, 0.55) is None


class TestConfig:
    def test_embedding_config_carries_seed(self):
        cfg = ExperimentConfig(seed=7)
        assert cfg.embedding_config().seed == 7

    def test_progressive_config_values(self):
        cfg = ExperimentConfig(sample_size=3, evals_per_round=4, candidate_subsample=99)
        pc = cfg.progressive_config()
        assert (pc.sample_size, pc.evals_per_round, pc.candidate_subsample) == (3, 4, 99)


class TestEvaluatorFactories:
    def test_experiments_registry(self):
        assert set(EXPERIMENTS) == {"Exp1", "Exp2"}
        assert set(TRANSFER_MODELS["Exp1"]) == {"resnet20", "resnet56", "resnet164"}

    def test_transfer_evaluator_builds_target_model(self):
        ev = transfer_evaluator("Exp1", "resnet20", seed=0)
        assert ev.model_name == "resnet20"
        assert ev.base_params < 500_000  # resnet20 < resnet56
        # baseline accuracy comes from the transfer calibration table
        assert ev.base_accuracy == pytest.approx(0.9130, abs=1e-4)

    def test_make_evaluator_matches_task(self):
        model_name, dataset_name, task = EXPERIMENTS["Exp1"]
        ev = make_evaluator(model_name, dataset_name, task, seed=0)
        assert ev.base_accuracy == pytest.approx(task.model_accuracy, abs=1e-6)


class TestFormatRow:
    def test_contains_all_columns(self):
        text = format_row("LeGR", _fake_result(0.4, 0.9069), 0.9104)
        assert "LeGR" in text
        assert "40.00%" in text
        assert "-0.35" in text  # accuracy change in pp

    def test_none_result(self):
        assert "no scheme" in format_row("RL", None, 0.91)
