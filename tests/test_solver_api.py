"""Tests for the unified Solver API (repro.core.solver).

Covers the PR's acceptance criteria: registry round-trip over the whole
zoo, the deprecated ``*Search`` facades (warning + equivalent results),
the driver's budget-accounting invariant for every registered solver,
serial-vs-parallel bit-identity through the EvaluationEngine, and seeded
determinism pins for the three new solvers (``sa``, ``regevo``, ``amc``).
"""

import json
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.costmodel import Budget
from repro.baselines import EvolutionSearch, RLSearch, RandomSearch
from repro.core.engine import EvaluationEngine
from repro.core.evaluator import SurrogateEvaluator
from repro.core.progressive import ProgressiveConfig
from repro.core.solver import (
    SOLVER_REGISTRY,
    Solver,
    get_solver,
    list_solvers,
    make_solver,
    register_solver,
    run_solver,
)
from repro.data.tasks import EXP1, transfer_task
from repro.knowledge.embedding import StrategyEmbeddings
from repro.models import resnet20
from repro.space import StrategySpace

ALL_SOLVERS = ["amc", "evolution", "grid", "progressive", "random", "regevo", "rl", "sa"]
GOLDEN_PATH = Path(__file__).parent / "goldens" / "solver_best.json"
#: the determinism pin covers this PR's three new solvers
PINNED_SOLVERS = ["sa", "regevo", "amc"]


def make_evaluator(seed=0):
    from repro.core.config import EvaluatorConfig

    task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
    return SurrogateEvaluator(
        lambda: resnet20(num_classes=10), "resnet20", "cifar10", task,
        config=EvaluatorConfig(seed=seed),
    )


@pytest.fixture(scope="module")
def small_space():
    return StrategySpace(method_labels=["C3", "C4"])


@pytest.fixture(scope="module")
def embeddings(small_space):
    rng = np.random.default_rng(0)
    return StrategyEmbeddings(
        table=rng.normal(0, 0.1, size=(len(small_space), 16)), space=small_space
    )


def solver_kwargs(name, embeddings):
    """Small per-solver settings so every zoo member runs in seconds."""
    return {
        "progressive": dict(
            embeddings=embeddings,
            config=ProgressiveConfig(sample_size=2, evals_per_round=2,
                                     candidate_subsample=32),
            experience=None,
        ),
        "evolution": dict(population_size=4, offspring_per_generation=3),
        "regevo": dict(population_size=4, tournament_size=2, children_per_round=3),
        "rl": dict(batch_size=2),
        "sa": dict(chains=2),
        "amc": dict(episodes_per_round=2),
        "grid": dict(max_evals_per_round=6),
    }.get(name, {})


# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_all_builtin_solvers_registered(self):
        assert list_solvers() == ALL_SOLVERS

    def test_round_trip_every_name(self):
        for name in ALL_SOLVERS:
            cls = get_solver(name)
            assert issubclass(cls, Solver)
            assert cls.solver_name == name

    def test_unknown_name_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="progressive"):
            get_solver("gradient-descent")

    def test_reregistering_same_class_is_idempotent(self):
        cls = get_solver("random")
        assert register_solver("random")(cls) is cls

    def test_reregistering_different_class_is_an_error(self):
        class Impostor(Solver):
            def propose(self, state):  # pragma: no cover - never run
                return []

        with pytest.raises(ValueError, match="already registered"):
            register_solver("random")(Impostor)

    def test_new_registration_and_cleanup(self):
        @register_solver("one-shot", label="OneShot")
        class OneShot(Solver):
            def propose(self, state):
                return [state.random_scheme()]

            def done(self):
                return self.strategy.rounds_completed >= 1

        try:
            assert get_solver("one-shot") is OneShot
            result = run_solver(
                "one-shot", make_evaluator(),
                StrategySpace(method_labels=["C3"]),
                gamma=0.2, budget_hours=0.5, seed=0,
            )
            assert result.algorithm == "OneShot"
            assert result.solver == "one-shot"
            assert result.rounds == 1
        finally:
            SOLVER_REGISTRY.pop("one-shot", None)


# --------------------------------------------------------------------------- #
class TestDeprecatedFacades:
    @pytest.mark.parametrize("cls", [RandomSearch, EvolutionSearch, RLSearch])
    def test_facade_warns(self, cls, small_space):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            cls(make_evaluator(), small_space, gamma=0.2, budget_hours=0.3, seed=1)

    def test_facade_matches_registry_run(self, small_space):
        """Old-style RandomSearch and run_solver('random') are the same run."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = RandomSearch(
                make_evaluator(), small_space, gamma=0.2, budget_hours=0.8, seed=7
            ).run()
        new = run_solver(
            "random", make_evaluator(), small_space,
            gamma=0.2, budget_hours=0.8, seed=7,
        )
        assert old.total_cost == new.total_cost
        assert old.evaluations == new.evaluations
        assert (
            [r.scheme.identifier for r in old.pareto]
            == [r.scheme.identifier for r in new.pareto]
        )


# --------------------------------------------------------------------------- #
class TestAccountingInvariant:
    @pytest.mark.parametrize("name", ALL_SOLVERS)
    def test_every_proposal_pruned_or_evaluated(self, name, small_space, embeddings):
        """proposals_total == proposals_pruned + evaluated_proposals, always.

        A static budget tight enough to reject weak-compression schemes
        exercises the pruning arm; pruned proposals are charged nothing.
        """
        evaluator = make_evaluator(seed=2)
        evaluator.set_budget(Budget(max_params=230_000))
        solver = make_solver(
            name, evaluator, small_space,
            gamma=0.2, budget_hours=0.8, seed=2,
            **solver_kwargs(name, embeddings),
        )
        result = solver.run()
        st = solver.strategy
        assert st.proposals_total == st.proposals_pruned + st.evaluated_proposals
        # feasible() is also used inside progressive's scoring, so the
        # zero-cost static-rejection count dominates the driver-gate count.
        assert st.budget_pruned >= st.proposals_pruned
        # repeats are deduplicated by the evaluator's result map, never
        # charged twice — fresh evaluations cannot exceed submissions (plus
        # progressive's setup(), which charges the empty-scheme baseline
        # outside the proposal gate).
        setup_evals = 1 if name == "progressive" else 0
        assert result.evaluations <= st.evaluated_proposals + setup_evals
        stats = result.solver_stats
        assert stats["proposals_total"] == st.proposals_total
        assert stats["proposals_pruned"] == st.proposals_pruned
        assert stats["evaluated_proposals"] == st.evaluated_proposals
        assert stats["budget_pruned"] == st.budget_pruned

    @pytest.mark.parametrize("name", ALL_SOLVERS)
    def test_result_carries_solver_identity(self, name, small_space, embeddings):
        result = run_solver(
            name, make_evaluator(), small_space,
            gamma=0.2, budget_hours=0.5, seed=1,
            **solver_kwargs(name, embeddings),
        )
        assert result.solver == name
        assert result.rounds >= 1
        assert f"solver={name}" in result.summary()


# --------------------------------------------------------------------------- #
class TestSerialParallelIdentity:
    @pytest.mark.parametrize("name", ALL_SOLVERS)
    def test_bit_identical_through_engine(self, name, small_space, embeddings):
        """Two workers and serial evaluation produce the same search."""
        kwargs = solver_kwargs(name, embeddings)
        serial_engine = EvaluationEngine(make_evaluator(seed=4), workers=0)
        serial = run_solver(
            name, serial_engine, small_space,
            gamma=0.2, budget_hours=0.5, seed=4, **kwargs,
        )
        with EvaluationEngine(make_evaluator(seed=4), workers=2) as engine:
            parallel = run_solver(
                name, engine, small_space,
                gamma=0.2, budget_hours=0.5, seed=4, **kwargs,
            )
        assert serial.total_cost == parallel.total_cost
        assert serial.evaluations == parallel.evaluations
        assert (
            [r.scheme.identifier for r in serial.pareto]
            == [r.scheme.identifier for r in parallel.pareto]
        )
        assert [p.hypervolume for p in serial.trajectory] == [
            p.hypervolume for p in parallel.trajectory
        ]


# --------------------------------------------------------------------------- #
class TestSeededDeterminism:
    def _best_identifiers(self, small_space, embeddings):
        best = {}
        for name in PINNED_SOLVERS:
            result = run_solver(
                name, make_evaluator(seed=0), small_space,
                gamma=0.2, budget_hours=0.8, seed=0,
                **solver_kwargs(name, embeddings),
            )
            assert result.best is not None, f"{name} found nothing feasible"
            best[name] = result.best.scheme.identifier
        return best

    def test_new_solvers_match_goldens(self, small_space, embeddings, update_goldens):
        measured = self._best_identifiers(small_space, embeddings)

        if update_goldens:
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(
                json.dumps(measured, indent=2, sort_keys=True) + "\n"
            )
            pytest.skip("solver goldens regenerated; review the diff")

        assert GOLDEN_PATH.exists(), (
            f"missing {GOLDEN_PATH}; generate with pytest --update-goldens"
        )
        goldens = json.loads(GOLDEN_PATH.read_text())
        assert measured == goldens


# --------------------------------------------------------------------------- #
class TestCLISurface:
    def test_solver_flag_parsed(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["search", "exp1", "--solver", "sa"])
        assert args.solver == "sa"
        assert args.algorithm == "AutoMC"  # legacy default untouched

    def test_solver_flag_rejects_unknown(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "exp1", "--solver", "sgd"])

    def test_every_registered_solver_is_a_cli_choice(self):
        from repro.cli import build_parser

        parser = build_parser()
        for name in list_solvers():
            args = parser.parse_args(["search", "exp1", "--solver", name])
            assert args.solver == name

    def test_trace_summarize_accepts_multiple_journals(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["trace", "summarize", "a.jsonl", "b.jsonl", "c.jsonl"]
        )
        assert args.journal == "a.jsonl"
        assert args.more_journals == ["b.jsonl", "c.jsonl"]
