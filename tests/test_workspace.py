"""Kernel plans and the thread-local workspace arena (repro.nn.workspace).

The layer's contract, in test form:

* *bit-identity* — planned execution equals the un-planned reference bit
  for bit, for every drawn conv geometry (hypothesis) and for the pooling
  paths, gradients included;
* *isolation* — workspaces are thread-local (one thread's kernels never
  touch another thread's scratch), while plans are shared process-wide;
* *allocation bugfixes stay fixed* — ``padding == 0`` never copies the
  input (the old path paid a full ``np.pad`` copy on every 1x1 conv), and
  the fused-ReLU clamp really happens in the output buffer (the old
  spelling silently clamped a temporary when the output was
  non-contiguous);
* *observability* — ``plan_cache_stats``/``workspace_stats`` report what
  actually happened.
"""

import threading

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.workspace import (
    Workspace,
    clear_plans,
    conv_plan,
    get_workspace,
    no_plans,
    pad2d,
    plan_cache_stats,
    plans_enabled,
    workspace_stats,
)


def conv_outputs(data, stride, padding, activation=None):
    """out/dx/dw/db of one conv2d forward+backward on copies of ``data``."""
    xd, wd, bd = data
    x = Tensor(xd.copy(), requires_grad=True)
    w = Tensor(wd.copy(), requires_grad=True)
    b = Tensor(bd.copy(), requires_grad=True)
    out = F.conv2d(x, w, b, stride=stride, padding=padding, activation=activation)
    out.backward(np.ones(out.shape, dtype=np.float32))
    return out.data.copy(), x.grad.copy(), w.grad.copy(), b.grad.copy()


# --------------------------------------------------------------------------- #
# Planned == reference, property-tested
# --------------------------------------------------------------------------- #
class TestPlannedBitIdentity:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 3),
        c=st.integers(1, 5),
        h=st.integers(3, 11),
        f=st.integers(1, 6),
        k=st.integers(1, 4),
        stride=st.integers(1, 3),
        padding=st.integers(0, 2),
        relu=st.booleans(),
    )
    def test_conv2d(self, n, c, h, f, k, stride, padding, relu):
        assume(h + 2 * padding >= k)
        rng = np.random.default_rng(n * 1000 + c * 100 + h * 10 + f + k + stride)
        data = (
            rng.normal(size=(n, c, h, h)).astype(np.float32),
            rng.normal(size=(f, c, k, k)).astype(np.float32),
            rng.normal(size=(f,)).astype(np.float32),
        )
        activation = "relu" if relu else None
        clear_plans()
        cold = conv_outputs(data, stride, padding, activation)
        warm = conv_outputs(data, stride, padding, activation)
        with no_plans():
            reference = conv_outputs(data, stride, padding, activation)
        for name, a, b, r in zip(("out", "dx", "dw", "db"), cold, warm, reference):
            np.testing.assert_array_equal(a, r, err_msg=f"{name} (cold)")
            np.testing.assert_array_equal(b, r, err_msg=f"{name} (warm)")

    @pytest.mark.parametrize("kernel,stride,size", [(2, 2, 8), (3, 1, 7), (3, 2, 9)])
    def test_avg_pool2d(self, rng, kernel, stride, size):
        xd = rng.normal(size=(2, 3, size, size)).astype(np.float32)

        def run():
            x = Tensor(xd.copy(), requires_grad=True)
            out = F.avg_pool2d(x, kernel=kernel, stride=stride)
            out.backward(np.ones(out.shape, dtype=np.float32))
            return out.data.copy(), x.grad.copy()

        clear_plans()
        planned_out, planned_dx = run()
        with no_plans():
            ref_out, ref_dx = run()
        np.testing.assert_array_equal(planned_out, ref_out)
        np.testing.assert_array_equal(planned_dx, ref_dx)


# --------------------------------------------------------------------------- #
# Thread isolation (style of tests/test_no_grad.py)
# --------------------------------------------------------------------------- #
class TestThreadIsolation:
    def test_workspaces_are_thread_local(self):
        """A buffer held mid-kernel by one thread survives another thread's
        kernels running the very same plan (same arena keys)."""
        xd = np.random.default_rng(0).normal(size=(2, 3, 8, 8)).astype(np.float32)
        wd = np.random.default_rng(1).normal(size=(4, 3, 3, 3)).astype(np.float32)
        clear_plans()

        filled = threading.Event()
        release = threading.Event()
        failures = []

        def worker():
            try:
                ws = get_workspace()
                plan = conv_plan(2, 3, 8, 8, 4, 3, 3, 1, 1, np.float32)
                buf = ws.request((plan.key, "cols"), (2, plan.ckk, plan.rows), np.float32)
                buf.fill(123.0)
                filled.set()
                # The main thread now runs the same conv shape; if arenas
                # were shared, its im2col would overwrite this buffer.
                assert release.wait(timeout=30)
                if not np.all(buf == 123.0):
                    failures.append("workspace buffer was clobbered cross-thread")
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(repr(exc))
                filled.set()

        thread = threading.Thread(target=worker)
        thread.start()
        try:
            assert filled.wait(timeout=30)
            F.conv2d(Tensor(xd), Tensor(wd), stride=1, padding=1)
        finally:
            release.set()
            thread.join(timeout=30)
        assert not failures, failures

    def test_plans_are_shared_across_threads(self):
        """The geometry cache is global: a plan built on one thread is a
        cache hit on another (counters stay per-thread)."""
        clear_plans()
        built = threading.Event()

        def builder():
            conv_plan(1, 2, 6, 6, 3, 3, 3, 1, 1, np.float32)
            built.set()

        thread = threading.Thread(target=builder)
        thread.start()
        thread.join(timeout=30)
        assert built.wait(timeout=30)
        before = plan_cache_stats()
        conv_plan(1, 2, 6, 6, 3, 3, 3, 1, 1, np.float32)
        after = plan_cache_stats()
        assert after["size"] == before["size"] == 1
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]  # built elsewhere

    def test_plans_enabled_is_thread_local(self):
        inside = threading.Event()
        release = threading.Event()
        seen = {}

        def worker():
            with no_plans():
                seen["worker"] = plans_enabled()
                inside.set()
                release.wait(timeout=30)

        thread = threading.Thread(target=worker)
        thread.start()
        try:
            assert inside.wait(timeout=30)
            assert plans_enabled()  # this thread is unaffected
        finally:
            release.set()
            thread.join(timeout=30)
        assert seen["worker"] is False


# --------------------------------------------------------------------------- #
# The satellite bugfixes stay fixed
# --------------------------------------------------------------------------- #
class TestPaddingZeroNoCopy:
    def test_pad2d_returns_input(self, rng):
        x = rng.normal(size=(2, 3, 5, 5)).astype(np.float32)
        assert pad2d(x, 0) is x
        assert pad2d(x, 1) is not x

    def test_conv2d_padding_zero_never_pads(self, rng, monkeypatch):
        """Both paths: a 1x1/no-padding conv must not touch np.pad at all."""

        def forbidden(*args, **kwargs):  # pragma: no cover - the assertion
            raise AssertionError("np.pad called for a padding=0 conv2d")

        monkeypatch.setattr(np, "pad", forbidden)
        x = Tensor(rng.normal(size=(2, 4, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 4, 1, 1)), requires_grad=True)
        clear_plans()
        F.conv2d(x, w, stride=1, padding=0).sum().backward()
        with no_plans():
            F.conv2d(x, w, stride=1, padding=0).sum().backward()


class TestFusedReluContiguity:
    def test_clamp_lands_in_output(self, rng):
        """The fused clamp must modify the tensor the op returns — on both
        paths — not a contiguous temporary (the old footgun)."""
        data = (
            rng.normal(size=(2, 3, 6, 6)).astype(np.float32),
            rng.normal(size=(4, 3, 3, 3)).astype(np.float32),
            np.zeros(4, dtype=np.float32),
        )
        clear_plans()
        for ctx in (None, no_plans):
            if ctx is None:
                fused = conv_outputs(data, 1, 1, "relu")[0]
            else:
                with ctx():
                    fused = conv_outputs(data, 1, 1, "relu")[0]
            assert fused.flags["C_CONTIGUOUS"]
            assert fused.min() >= 0.0
        plain = conv_outputs(data, 1, 1, None)[0]
        np.testing.assert_array_equal(fused, np.maximum(plain, 0.0))


# --------------------------------------------------------------------------- #
# Arena mechanics and observability
# --------------------------------------------------------------------------- #
class TestWorkspaceArena:
    def test_request_reuses_and_grows(self):
        ws = Workspace()
        a = ws.request(("k",), (4, 4), np.float32)
        b = ws.request(("k",), (4, 4), np.float32)
        assert a.base is b.base  # same backing buffer, no reallocation
        assert ws.bytes_in_use == 64
        big = ws.request(("k",), (8, 8), np.float32)
        assert big.shape == (8, 8)
        assert ws.bytes_in_use == 256
        assert ws.bytes_peak == 256
        small_again = ws.request(("k",), (2, 2), np.float64)
        assert small_again.base is big.base  # shrink reuses; dtype is a view
        assert ws.bytes_peak == 256

    def test_ready_flag_cleared_on_growth(self):
        ws = Workspace()
        ws.request(("pad",), (2, 2), np.float32)
        ws.mark_ready(("pad",))
        assert ws.is_ready(("pad",))
        ws.request(("pad",), (2, 2), np.float32)
        assert ws.is_ready(("pad",))  # reuse keeps one-time contents
        ws.request(("pad",), (16, 16), np.float32)
        assert not ws.is_ready(("pad",))  # growth discards them

    def test_zeros_and_clear(self):
        ws = Workspace()
        z = ws.zeros(("z",), (3, 3), np.float32)
        assert np.all(z == 0)
        ws.clear()
        assert ws.bytes_in_use == 0
        assert ws.bytes_peak > 0  # the statistic survives eviction

    def test_stats_shape(self):
        stats = workspace_stats()
        assert set(stats) == {"buffers", "bytes_in_use", "bytes_peak"}

    def test_plan_cache_stats_track_usage(self, rng):
        clear_plans()
        x = Tensor(rng.normal(size=(1, 2, 6, 6)))
        w = Tensor(rng.normal(size=(3, 2, 3, 3)))
        F.conv2d(x, w, stride=1, padding=1)
        first = plan_cache_stats()
        F.conv2d(x, w, stride=1, padding=1)
        second = plan_cache_stats()
        assert first["misses"] >= 1
        assert second["hits"] == first["hits"] + 1
        assert second["size"] == first["size"]
