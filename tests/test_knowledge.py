"""Tests for the knowledge graph, TransR, experience and Algorithm 1."""

import networkx as nx
import numpy as np
import pytest

from repro.knowledge import (
    EmbeddingConfig,
    TransR,
    TransRConfig,
    build_knowledge_graph,
    default_experience,
    learn_embeddings,
    nearest_strategy,
)
from repro.knowledge.graph import ENTITY_TYPES, RELATIONS
from repro.space import StrategySpace


@pytest.fixture(scope="module")
def small_space():
    """C3+C4 only (150 strategies) keeps knowledge tests fast."""
    return StrategySpace(method_labels=["C3", "C4"])


@pytest.fixture(scope="module")
def small_graph(small_space):
    return build_knowledge_graph(small_space)


class TestKnowledgeGraph:
    def test_entity_types_complete(self, small_graph):
        for entity_type in ENTITY_TYPES:
            assert small_graph.entities_of_type(entity_type), entity_type

    def test_strategy_entities_cover_space(self, small_space, small_graph):
        assert len(small_graph.entities_of_type("strategy")) == len(small_space)
        for strategy in small_space:
            assert strategy.identifier in small_graph.strategy_entities

    def test_r1_every_strategy_links_to_its_method(self, small_space, small_graph):
        g = small_graph.graph
        for strategy in small_space:
            assert g.has_edge(strategy.identifier, strategy.method_label, key="R1")

    def test_r2_settings_per_strategy(self, small_space, small_graph):
        g = small_graph.graph
        strategy = small_space[0]
        settings = [
            t for _, t, k in g.out_edges(strategy.identifier, keys=True) if k == "R2"
        ]
        assert len(settings) == len(strategy.hp_items)

    def test_r5_no_duplicate_edges(self, small_graph):
        g = small_graph.graph
        for hp in small_graph.entities_of_type("hyperparameter"):
            for setting in {t for _, t, k in g.out_edges(hp, keys=True) if k == "R5"}:
                assert g.number_of_edges(hp, setting) == 1

    def test_triplets_reference_valid_ids(self, small_graph):
        t = small_graph.triplets
        assert t.shape[1] == 3
        assert t[:, 0].max() < small_graph.num_entities
        assert t[:, 2].max() < small_graph.num_entities
        assert t[:, 1].max() < len(RELATIONS)

    def test_graph_is_connected_via_methods(self, small_graph):
        undirected = small_graph.graph.to_undirected()
        assert nx.number_connected_components(undirected) == 1


class TestTransR:
    def test_loss_decreases(self, small_graph):
        model = TransR(small_graph.num_entities, small_graph.num_relations,
                       TransRConfig(entity_dim=16, relation_dim=16, seed=0))
        losses = model.fit(small_graph.triplets, epochs=6)
        assert losses[-1] < losses[0]

    def test_entities_stay_bounded(self, small_graph):
        model = TransR(small_graph.num_entities, small_graph.num_relations)
        model.fit(small_graph.triplets, epochs=3)
        norms = np.linalg.norm(model.entities, axis=1)
        assert (norms <= 1.0 + 1e-9).all()

    def test_true_triplets_score_better_than_random(self, small_graph):
        model = TransR(small_graph.num_entities, small_graph.num_relations,
                       TransRConfig(seed=0))
        model.fit(small_graph.triplets, epochs=8)
        t = small_graph.triplets
        rng = np.random.default_rng(0)
        pos = model.score(t[:, 0], t[:, 1], t[:, 2]).mean()
        corrupted = rng.integers(0, small_graph.num_entities, size=len(t))
        neg = model.score(t[:, 0], t[:, 1], corrupted).mean()
        assert pos < neg

    def test_embedding_of_returns_copy(self, small_graph):
        model = TransR(small_graph.num_entities, small_graph.num_relations)
        e = model.embedding_of(0)
        e[:] = 99.0
        assert not np.allclose(model.entities[0], 99.0)


class TestExperience:
    def test_default_experience_covers_all_methods(self):
        records = default_experience()
        methods = {r.method_label for r in records}
        # C8 (post-training quantization) joined the knowledge base so the
        # search can rank quantized extensions from transcribed experience
        assert methods == {"C1", "C2", "C3", "C4", "C5", "C6", "C8"}
        assert len(records) >= 60

    def test_ar_pr_ranges(self):
        for record in default_experience():
            if record.method_label == "C8":
                # quantization leaves the parameter *count* unchanged; its
                # gain is weight memory, so recorded PR is exactly zero
                assert record.pr == 0.0
            else:
                assert 0.0 < record.pr < 1.0
            assert -1.0 < record.ar < 0.2

    def test_nearest_strategy_matches_method_and_values(self, space):
        records = default_experience()
        record = next(r for r in records if r.method_label == "C2")
        strategy = nearest_strategy(space, record)
        assert strategy.method_label == "C2"
        recorded = dict(record.hp)
        if "HP8" in recorded:
            assert strategy.hp["HP8"] == recorded["HP8"]

    def test_nearest_strategy_none_when_method_absent(self):
        restricted = StrategySpace(method_labels=["C3"])
        record = next(r for r in default_experience() if r.method_label == "C2")
        assert nearest_strategy(restricted, record) is None


class TestAlgorithm1:
    def test_full_pipeline_shapes(self, small_space):
        emb = learn_embeddings(
            small_space,
            config=EmbeddingConfig(dim=16, rounds=1, transr_epochs_per_round=1,
                                   nn_exp_epochs_per_round=5),
        )
        assert emb.table.shape == (len(small_space), 16)
        assert np.isfinite(emb.table).all()

    def test_nn_exp_loss_decreases(self, small_space):
        emb = learn_embeddings(
            small_space,
            config=EmbeddingConfig(dim=16, rounds=2, transr_epochs_per_round=1,
                                   nn_exp_epochs_per_round=20),
        )
        assert emb.nn_exp_losses[-1] < emb.nn_exp_losses[0]

    def test_ablation_no_kg(self, small_space):
        emb = learn_embeddings(
            small_space,
            config=EmbeddingConfig(dim=16, rounds=1, use_kg=False,
                                   nn_exp_epochs_per_round=5),
        )
        assert emb.transr_losses == []
        assert emb.nn_exp_losses  # experience still used

    def test_ablation_no_experience(self, small_space):
        emb = learn_embeddings(
            small_space,
            config=EmbeddingConfig(dim=16, rounds=1, transr_epochs_per_round=2,
                                   use_experience=False),
        )
        assert emb.nn_exp_losses == []
        assert emb.transr_losses

    def test_of_indexes_by_strategy(self, small_space):
        emb = learn_embeddings(
            small_space,
            config=EmbeddingConfig(dim=8, rounds=1, transr_epochs_per_round=1,
                                   nn_exp_epochs_per_round=2),
        )
        strategy = small_space[3]
        np.testing.assert_array_equal(emb.of(strategy), emb.table[3])
