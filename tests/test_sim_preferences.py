"""Tests for the experience-derived hyperparameter preferences of the
surrogate — the knowledge-to-reward channel."""


from repro.sim.accuracy import AccuracyModel, _experience_preferences, _preferred_value
from repro.space.hyperparams import HP_GRID


class TestPreferenceTable:
    def test_votes_follow_records(self):
        prefs = _experience_preferences()
        # C2's records overwhelmingly report l2_weight on cifar10.
        assert prefs[("C2", "HP8", "cifar10")] == "l2_weight"
        # C5 on cifar100 was reported with l1norm, on cifar10 with k34.
        assert prefs[("C5", "HP12", "cifar100")] == "l1norm"
        assert prefs[("C5", "HP12", "cifar10")] == "k34"

    def test_wildcard_fallback_exists(self):
        prefs = _experience_preferences()
        for method in ("C1", "C2", "C3", "C4", "C5", "C6"):
            keys = [k for k in prefs if k[0] == method and k[2] == "*"]
            assert keys, f"no wildcard preferences for {method}"

    def test_preferred_value_always_in_grid(self):
        for method, hp in (("C1", "HP4"), ("C2", "HP8"), ("C5", "HP12"), ("C6", "HP16")):
            value = _preferred_value(method, hp, "resnet56", "cifar10", HP_GRID[hp])
            assert value in HP_GRID[hp]

    def test_hash_fallback_for_unreported_hp(self):
        # HP13 (HOS optimization epochs) never appears in the records.
        prefs = _experience_preferences()
        assert not any(k[1] == "HP13" for k in prefs)
        value = _preferred_value("C5", "HP13", "resnet56", "cifar10", HP_GRID["HP13"])
        assert value in HP_GRID["HP13"]


class TestKnowledgeRewardChannel:
    def test_reported_setting_damages_least(self):
        """Using exactly the settings the papers report minimises the
        surrogate's damage modifier — knowledge is worth following."""
        model = AccuracyModel("resnet56", "cifar10")
        reported = {"HP6": 0.9, "HP8": "l2_weight"}
        wrong = {"HP6": 0.7, "HP8": "l1_weight"}
        assert model.hp_modifier("C2", reported) <= model.hp_modifier("C2", wrong)

    def test_dataset_specific_preferences_differ(self):
        cifar10 = AccuracyModel("resnet56", "cifar10")
        cifar100 = AccuracyModel("vgg16", "cifar100")
        k34 = {"HP12": "k34"}
        l1 = {"HP12": "l1norm"}
        # cifar10 rewards k34, cifar100 rewards l1norm (per the records).
        assert cifar10.hp_modifier("C5", k34) <= cifar10.hp_modifier("C5", l1)
        assert cifar100.hp_modifier("C5", l1) <= cifar100.hp_modifier("C5", k34)
