"""Tests for the ASCII plotting helpers."""


from repro.experiments.plotting import ascii_lines, ascii_scatter


class TestAsciiScatter:
    def test_empty(self):
        assert ascii_scatter({}) == "(no data)"
        assert ascii_scatter({"a": []}) == "(no data)"

    def test_contains_markers_and_legend(self):
        chart = ascii_scatter({"AutoMC": [(40.0, 92.6)], "RL": [(77.0, 87.2)]})
        assert "o" in chart and "x" in chart
        assert "o=AutoMC" in chart and "x=RL" in chart

    def test_axis_labels_present(self):
        chart = ascii_scatter({"a": [(0, 0), (1, 1)]}, x_label="PR (%)", y_label="Acc")
        assert "PR (%)" in chart
        assert "[Acc]" in chart

    def test_extremes_on_borders(self):
        chart = ascii_scatter({"a": [(0, 0), (10, 5)]}, width=20, height=6)
        rows = chart.split("\n")
        # Top data row contains the max-y marker, bottom data row the min-y
        # (rows[-3] is the bottom border, rows[-4] the last data row).
        assert "o" in rows[1]
        assert "o" in rows[-4]

    def test_single_point_no_crash(self):
        chart = ascii_scatter({"only": [(3.0, 4.0)]})
        assert "o" in chart

    def test_dimensions_respected(self):
        chart = ascii_scatter({"a": [(0, 0), (1, 1)]}, width=30, height=5)
        rows = chart.split("\n")
        data_rows = [r for r in rows if r.strip().startswith("|")]
        assert len(data_rows) == 5
        assert all(len(r.strip()) == 32 for r in data_rows)  # |...30...|

    def test_lines_alias(self):
        chart = ascii_lines({"a": [(0, 1), (1, 2), (2, 3)]})
        assert "o" in chart
