"""White-box tests for the baseline searchers' operators."""

import numpy as np
import pytest

from repro.baselines.evolution import EvolutionSearch
from repro.baselines.rl import ControllerRNN, RLSearch
from repro.core.evaluator import SurrogateEvaluator
from repro.data.tasks import EXP1, transfer_task
from repro.models import resnet20
from repro.nn import Tensor
from repro.space import StrategySpace
from repro.space.hyperparams import HP_GRID, METHOD_HPS


def _evaluator(seed=0):
    task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
    return SurrogateEvaluator(
        lambda: resnet20(num_classes=10), "resnet20", "cifar10", task, seed=seed
    )


@pytest.fixture()
def evolution():
    space = StrategySpace(method_labels=["C3", "C4"])
    return EvolutionSearch(_evaluator(), space, gamma=0.2, budget_hours=0.1, seed=0)


class TestEvolutionOperators:
    def test_mutation_stays_valid(self, evolution):
        scheme = evolution.random_scheme()
        for _ in range(30):
            scheme = evolution._mutate(scheme)
            assert 1 <= scheme.length <= evolution.max_length
            assert scheme.total_param_step <= 0.9 + 1e-9

    def test_mutation_changes_something_usually(self, evolution):
        scheme = evolution.random_scheme()
        changed = sum(
            evolution._mutate(scheme).identifier != scheme.identifier
            for _ in range(20)
        )
        assert changed >= 10

    def test_crossover_child_within_bounds(self, evolution):
        a = evolution.random_scheme()
        b = evolution.random_scheme()
        for _ in range(20):
            child = evolution._crossover(a, b)
            assert 1 <= child.length <= evolution.max_length
            assert child.total_param_step <= 0.9 + 1e-9

    def test_environmental_selection_prefers_nondominated(self, evolution):
        schemes = [evolution.random_scheme() for _ in range(6)]
        # Construct points where index 0 dominates everything.
        points = np.array([[0.1 * i, 0.1 * i] for i in range(6)])[::-1]
        survivors = evolution._environmental_selection(schemes, points)
        assert schemes[0] in survivors

    def test_beats_prefers_dominating_point(self):
        points = np.array([[1.0, 1.0], [0.0, 0.0]])
        assert EvolutionSearch._beats(points, 0, 1)
        assert not EvolutionSearch._beats(points, 1, 0)


class TestControllerRNN:
    def test_heads_cover_all_hyperparameters(self):
        controller = ControllerRNN(["C1", "C2", "C3", "C4", "C5", "C6"])
        needed = {
            hp
            for label in METHOD_HPS
            if label not in ("C7", "C8")
            for hp in METHOD_HPS[label]
        }
        assert set(controller.hp_heads) == needed
        for hp, head in controller.hp_heads.items():
            assert head.out_features == len(HP_GRID[hp])

    def test_step_updates_hidden(self):
        controller = ControllerRNN(["C3", "C4"], hidden=8)
        hidden = Tensor(np.zeros((1, 8)))
        new_hidden = controller.step(0, hidden)
        assert new_hidden.shape == (1, 8)
        assert np.abs(new_hidden.data).sum() > 0

    def test_hp_heads_are_registered_parameters(self):
        controller = ControllerRNN(["C3"])
        names = [n for n, _ in controller.named_parameters()]
        assert any(n.startswith("hp_HP2") for n in names)


class TestRLSampling:
    def test_sampled_schemes_valid(self):
        space = StrategySpace()
        searcher = RLSearch(_evaluator(), space, gamma=0.3, budget_hours=0.1, seed=0)
        for _ in range(10):
            scheme, log_probs = searcher._sample_scheme()
            assert scheme.length <= searcher.max_length
            assert scheme.total_param_step <= 0.9 + 1e-9
            if scheme.length:
                assert log_probs
                # Every sampled strategy must exist in the space.
                for strategy in scheme:
                    assert space.by_identifier(strategy.identifier) is strategy

    def test_reward_penalises_missing_target(self):
        space = StrategySpace(method_labels=["C3"])
        searcher = RLSearch(_evaluator(), space, gamma=0.3, budget_hours=0.1, seed=0)

        class FakeResult:
            ar = 0.0

        good = FakeResult()
        good.pr = 0.35
        bad = FakeResult()
        bad.pr = 0.05
        assert searcher._reward(good) > searcher._reward(bad)
