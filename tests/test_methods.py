"""Integration tests: every compression method really compresses a model.

These run real surgery + real (tiny) gradient training end to end; they are
the strongest evidence that nothing in the pipeline is stubbed.
"""

import copy

import numpy as np
import pytest

from repro.compression import (
    EXTENSION_METHODS,
    METHODS,
    ExecutionContext,
    get_method,
)
from repro.compression.factorized import BasisConv2d, TuckerConv2d
from repro.models import resnet8, vgg8_tiny
from repro.nn import Trainer, evaluate_accuracy

HP_DEFAULTS = {
    "HP1": 0.2, "HP2": 0.2, "HP4": 3, "HP5": 0.5, "HP6": 0.9, "HP7": 0.4,
    "HP8": "l2_weight", "HP9": 0.2, "HP10": 3, "HP11": "P1", "HP12": "l1norm",
    "HP13": 0.3, "HP14": 1, "HP15": 1.0, "HP16": "MSE", "HP17": 5, "HP18": 0.5,
}


def _context(tiny_data, train_enabled=True, original_params=None, seed=0):
    train, val = tiny_data
    return ExecutionContext(
        original_params=original_params,
        pretrain_epochs=2,
        dataset=train,
        val_dataset=val,
        trainer=Trainer(lr=0.05, batch_size=32, seed=seed),
        train_enabled=train_enabled,
        seed=seed,
    )


@pytest.mark.parametrize("label", sorted(METHODS))
@pytest.mark.parametrize("factory", [resnet8, vgg8_tiny], ids=["resnet", "vgg"])
class TestAllMethodsRealRun:
    def test_reduces_params_and_stays_functional(self, label, factory, tiny_data, trained_resnet8, trained_vgg8):
        source = trained_resnet8 if factory is resnet8 else trained_vgg8
        model = copy.deepcopy(source)
        before = model.num_parameters()
        ctx = _context(tiny_data, original_params=before)
        report = METHODS[label].apply(model, dict(HP_DEFAULTS), ctx)

        after = model.num_parameters()
        assert after < before
        assert report.params_before == before
        assert report.params_after == after
        # Step should approximately hit the HP2 budget of 20%.
        step_pr = (before - after) / before
        assert 0.10 <= step_pr <= 0.35
        _, val = tiny_data
        acc = evaluate_accuracy(model, val)
        assert 0.0 <= acc <= 1.0

    def test_analysis_only_mode_no_training(self, label, factory, tiny_data, trained_resnet8, trained_vgg8):
        """train_enabled=False must still do surgery but skip gradients."""
        source = trained_resnet8 if factory is resnet8 else trained_vgg8
        model = copy.deepcopy(source)
        before = model.num_parameters()
        ctx = _context(tiny_data, train_enabled=False, original_params=before)
        METHODS[label].apply(model, dict(HP_DEFAULTS), ctx)
        assert model.num_parameters() < before


class TestMethodSpecifics:
    def test_ns_prunes_lowest_gamma_channels(self, tiny_data, trained_resnet8):
        model = copy.deepcopy(trained_resnet8)
        unit = model.pruning_units()[0]
        # Mark channel 0 as clearly least important.
        unit.bn.gamma.data[0] = 1e-6
        ctx = _context(tiny_data, train_enabled=False, original_params=model.num_parameters())
        METHODS["C3"].apply(model, {**HP_DEFAULTS, "HP2": 0.1}, ctx)
        unit_after = model.pruning_units()[0]
        # Channel 0 should be gone; the next surviving one moved up.
        assert not np.allclose(unit_after.producer.weight.data[0], 0)
        assert abs(unit_after.bn.gamma.data).min() > 1e-6

    def test_sfp_soft_zeroing_recovers(self, tiny_data, trained_resnet8):
        """With training enabled SFP's zeroed filters receive gradients."""
        model = copy.deepcopy(trained_resnet8)
        ctx = _context(tiny_data, original_params=model.num_parameters())
        report = METHODS["C4"].apply(model, {**HP_DEFAULTS, "HP9": 0.5, "HP10": 2}, ctx)
        assert report.train_epochs == pytest.approx(1.0)  # 0.5 * 2 epochs

    def test_hos_creates_tucker_layers(self, tiny_data, trained_vgg8):
        model = copy.deepcopy(trained_vgg8)
        ctx = _context(tiny_data, train_enabled=False, original_params=model.num_parameters())
        METHODS["C5"].apply(model, {**HP_DEFAULTS, "HP2": 0.3}, ctx)
        kinds = [type(m) for m in model.modules()]
        assert TuckerConv2d in kinds

    def test_lfb_creates_basis_layers(self, tiny_data, trained_vgg8):
        model = copy.deepcopy(trained_vgg8)
        ctx = _context(tiny_data, train_enabled=False, original_params=model.num_parameters())
        METHODS["C6"].apply(model, dict(HP_DEFAULTS), ctx)
        kinds = [type(m) for m in model.modules()]
        assert BasisConv2d in kinds

    def test_lma_shrinks_every_unit(self, tiny_data, trained_resnet8):
        model = copy.deepcopy(trained_resnet8)
        widths_before = [u.out_channels for u in model.pruning_units()]
        ctx = _context(tiny_data, train_enabled=False, original_params=model.num_parameters())
        METHODS["C1"].apply(model, {**HP_DEFAULTS, "HP2": 0.3}, ctx)
        widths_after = [u.out_channels for u in model.pruning_units()]
        assert all(a <= b for a, b in zip(widths_after, widths_before))
        assert sum(widths_after) < sum(widths_before)

    def test_legr_respects_hp6_cap(self, tiny_data, trained_vgg8):
        model = copy.deepcopy(trained_vgg8)
        units_before = {u.name: u.out_channels for u in model.pruning_units()}
        ctx = _context(tiny_data, train_enabled=False, original_params=model.num_parameters())
        METHODS["C2"].apply(model, {**HP_DEFAULTS, "HP2": 0.4, "HP6": 0.7}, ctx)
        for unit in model.pruning_units():
            kept_fraction = unit.out_channels / units_before[unit.name]
            assert kept_fraction >= 0.3 - 1e-9  # lost at most HP6 = 70%

    def test_methods_are_singletons_with_labels(self):
        assert set(METHODS) == {"C1", "C2", "C3", "C4", "C5", "C6"}
        for label, method in METHODS.items():
            assert method.label == label
            assert method.techniques

    def test_get_method_by_label_and_name(self):
        assert get_method("C2") is METHODS["C2"]
        assert get_method("legr") is METHODS["C2"]
        assert get_method("NS") is METHODS["C3"]
        with pytest.raises(KeyError):
            get_method("nonexistent")


class TestQuantizationExtension:
    def test_weights_become_powers_of_two(self, tiny_data, trained_resnet8):
        model = copy.deepcopy(trained_resnet8)
        ctx = _context(tiny_data, train_enabled=False, original_params=model.num_parameters())
        report = EXTENSION_METHODS["C7"].apply(model, dict(HP_DEFAULTS), ctx)
        assert report.params_after == report.params_before
        assert report.details["effective_bits"] == 5.0
        for p in model.parameters():
            if p.ndim < 2:
                continue
            nonzero = p.data[np.abs(p.data) > 1e-12]
            if nonzero.size:
                log2 = np.log2(np.abs(nonzero))
                np.testing.assert_allclose(log2, np.round(log2), atol=1e-9)

    def test_model_still_functional_after_quantization(self, tiny_data, trained_resnet8):
        model = copy.deepcopy(trained_resnet8)
        ctx = _context(tiny_data, original_params=model.num_parameters())
        EXTENSION_METHODS["C7"].apply(model, {**HP_DEFAULTS, "HP1": 0.1}, ctx)
        _, val = tiny_data
        assert 0.0 <= evaluate_accuracy(model, val) <= 1.0
