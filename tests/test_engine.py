"""Tests for the batched evaluation engine, persistent cache and new API.

Covers the PR's acceptance criteria: serial-vs-parallel bit-identity on both
backends, warm-cache runs paying zero simulated hours for seen schemes,
fingerprint-mismatch cache misses, the `EvaluatorConfig` deprecation shim,
and PYTHONHASHSEED-independence of evaluation results.
"""

import json
import os
import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro.analysis.linter import SchemeRejected
from repro.core import (
    EvaluationEngine,
    Evaluator,
    EvaluatorConfig,
    ResultCache,
    SurrogateEvaluator,
    TrainingEvaluator,
)
from repro.core.evaluator import stable_hash
from repro.data.datasets import tiny_dataset
from repro.data.tasks import EXP1, transfer_task
from repro.models import create_model, resnet20
from repro.space import CompressionScheme, StrategySpace

TASK = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)


def make_surrogate(seed=0):
    return SurrogateEvaluator(
        lambda: resnet20(num_classes=10),
        "resnet20",
        "cifar10",
        TASK,
        config=EvaluatorConfig(seed=seed),
    )


@pytest.fixture(scope="module")
def space():
    return StrategySpace()


@pytest.fixture(scope="module")
def schemes(space):
    """A small batch with a shared prefix, a duplicate, and singletons."""
    c3 = space.of_method("C3")
    c2 = space.of_method("C2")
    base = CompressionScheme((c3[4],))
    return [
        base,
        base.extend(c3[8]),
        CompressionScheme((c2[2],)),
        base,  # duplicate of schemes[0]
        CompressionScheme((c3[11],)),
    ]


def assert_results_identical(a, b):
    assert a.scheme.identifier == b.scheme.identifier
    assert a.accuracy == b.accuracy
    assert a.params == b.params
    assert a.flops == b.flops
    assert a.cost == b.cost
    assert a.step_costs == b.step_costs


class TestSerialParallelEquivalence:
    def test_surrogate_bit_identical(self, schemes):
        serial = EvaluationEngine(make_surrogate(), workers=0)
        with EvaluationEngine(make_surrogate(), workers=2) as parallel:
            for a, b in zip(serial.evaluate_many(schemes), parallel.evaluate_many(schemes)):
                assert_results_identical(a, b)
            assert serial.total_cost == parallel.total_cost
            assert serial.evaluation_count == parallel.evaluation_count
            front_a = {r.scheme.identifier for r in serial.pareto_results(None)}
            front_b = {r.scheme.identifier for r in parallel.pareto_results(None)}
            assert front_a == front_b

    def test_training_bit_identical(self, space):
        train = tiny_dataset(num_classes=4, num_samples=96, image_size=8, seed=1)
        val = tiny_dataset(num_classes=4, num_samples=48, image_size=8, seed=2)
        c3 = space.of_method("C3")
        batch = [
            CompressionScheme((c3[4],)),
            CompressionScheme((c3[4], c3[8])),
        ]

        def make():
            return TrainingEvaluator(
                "resnet8", train, val,
                config=EvaluatorConfig(pretrain_epochs=1.0, seed=5),
            )

        serial = EvaluationEngine(make(), workers=0)
        with EvaluationEngine(make(), workers=2) as parallel:
            for a, b in zip(serial.evaluate_many(batch), parallel.evaluate_many(batch)):
                assert_results_identical(a, b)
            assert serial.total_cost == parallel.total_cost

    def test_engine_matches_bare_evaluator(self, schemes):
        bare = make_surrogate()
        bare_results = bare.evaluate_many(schemes)
        engine = EvaluationEngine(make_surrogate(), workers=0)
        for a, b in zip(bare_results, engine.evaluate_many(schemes)):
            assert_results_identical(a, b)
        assert bare.total_cost == engine.total_cost

    def test_batch_charges_match_sequential_evaluate(self, schemes):
        one_by_one = make_surrogate()
        for scheme in schemes:
            one_by_one.evaluate(scheme)
        batched = make_surrogate()
        batched.evaluate_many(schemes)
        assert one_by_one.total_cost == batched.total_cost


class TestPersistentCache:
    def test_round_trip_pays_zero(self, tmp_path, schemes):
        first = EvaluationEngine(make_surrogate(), workers=0, cache_dir=tmp_path)
        r1 = first.evaluate_many(schemes)
        assert first.cache_hits == 0
        assert first.total_cost > 0

        second = EvaluationEngine(make_surrogate(), workers=0, cache_dir=tmp_path)
        r2 = second.evaluate_many(schemes)
        assert second.fresh_evaluations == 0
        assert second.total_cost == 0.0
        assert second.evaluation_count == 0
        assert second.cache_hits == len({s.identifier for s in schemes})
        for a, b in zip(r1, r2):
            assert a.accuracy == b.accuracy
            assert a.params == b.params
            assert a.flops == b.flops
            assert a.step_costs == b.step_costs

    def test_foreign_hits_distinguish_other_writers(self, tmp_path, schemes):
        writer = EvaluationEngine(make_surrogate(), workers=0, cache_dir=tmp_path)
        writer.evaluate_many(schemes[:2])
        assert writer.cache_foreign_hits == 0

        # every hit in a fresh engine was written by someone else
        reader = EvaluationEngine(make_surrogate(), workers=0, cache_dir=tmp_path)
        reader.evaluate_many(schemes[:2])
        unique = len({s.identifier for s in schemes[:2]})
        assert reader.cache_hits == unique
        assert reader.cache_foreign_hits == unique

    def test_latency_column_round_trips_through_cache(self, tmp_path, schemes):
        def make():
            return SurrogateEvaluator(
                lambda: resnet20(num_classes=10), "resnet20", "cifar10", TASK,
                config=EvaluatorConfig(seed=0, latency_batch=2),
            )

        first = EvaluationEngine(make(), workers=0, cache_dir=tmp_path)
        [r1] = first.evaluate_many(schemes[:1])
        assert r1.latency_ms > 0.0
        # a hit replays the recorded wall-clock instead of re-measuring
        second = EvaluationEngine(make(), workers=0, cache_dir=tmp_path)
        [r2] = second.evaluate_many(schemes[:1])
        assert second.cache_hits == 1
        assert r2.latency_ms == r1.latency_ms

    def test_fingerprint_mismatch_misses(self, tmp_path, schemes):
        EvaluationEngine(make_surrogate(seed=0), workers=0, cache_dir=tmp_path).evaluate_many(
            schemes[:1]
        )
        other = EvaluationEngine(make_surrogate(seed=1), workers=0, cache_dir=tmp_path)
        other.evaluate_many(schemes[:1])
        assert other.cache_hits == 0
        assert other.fresh_evaluations == 1

    def test_fresh_child_of_cached_parent_charges_increment(self, tmp_path, space):
        c3 = space.of_method("C3")
        parent = CompressionScheme((c3[4],))
        child = parent.extend(c3[8])
        EvaluationEngine(make_surrogate(), workers=0, cache_dir=tmp_path).evaluate_many(
            [parent, child]
        )
        warm = EvaluationEngine(make_surrogate(), workers=0, cache_dir=tmp_path)
        grandchild = child.extend(c3[2])
        result = warm.evaluate_many([parent, child, grandchild])[-1]
        assert warm.cache_hits == 2 and warm.fresh_evaluations == 1
        # only the third step is paid: parent+child steps came from the cache
        from repro.core.evaluator import EVAL_OVERHEAD_HOURS

        expected = EVAL_OVERHEAD_HOURS + result.step_costs[2]
        assert result.cost == pytest.approx(expected)
        assert warm.total_cost == result.cost

    def test_corrupt_cache_file_is_a_miss(self, tmp_path, schemes):
        engine = EvaluationEngine(make_surrogate(), workers=0, cache_dir=tmp_path)
        engine.evaluate_many(schemes[:1])
        (payload_file,) = list(engine.cache.root.glob("*.json"))
        payload_file.write_text("{not json")
        again = EvaluationEngine(make_surrogate(), workers=0, cache_dir=tmp_path)
        again.evaluate_many(schemes[:1])
        assert again.cache_hits == 0
        assert again.fresh_evaluations == 1

    def test_cache_json_preserves_floats_exactly(self, tmp_path, schemes):
        engine = EvaluationEngine(make_surrogate(), workers=0, cache_dir=tmp_path)
        (result,) = engine.evaluate_many(schemes[:1])
        reloaded = ResultCache(tmp_path, engine.fingerprint()).get(schemes[0])
        assert reloaded.accuracy == result.accuracy
        assert reloaded.step_costs == result.step_costs


class TestBatchContract:
    def test_duplicates_map_to_same_object(self, schemes):
        evaluator = make_surrogate()
        results = evaluator.evaluate_many(schemes)
        assert results[0] is results[3]
        assert evaluator.evaluation_count == len({s.identifier for s in schemes})

    def test_results_align_with_input_order(self, schemes):
        evaluator = make_surrogate()
        results = evaluator.evaluate_many(schemes)
        for scheme, result in zip(schemes, results):
            assert result.scheme.identifier == scheme.identifier

    def test_lint_rejects_before_any_evaluation(self, space):
        c3 = space.of_method("C3")
        good = CompressionScheme((c3[4],))
        doomed = CompressionScheme(tuple(c3[0] for _ in range(6)))  # L006: too long
        evaluator = make_surrogate()
        with pytest.raises(SchemeRejected):
            evaluator.evaluate_many([good, doomed])
        assert evaluator.evaluation_count == 0
        assert evaluator.total_cost == 0.0
        assert doomed.identifier in evaluator.rejected


class TestEvaluatorProtocol:
    def test_backends_and_engine_satisfy_protocol(self):
        evaluator = make_surrogate()
        assert isinstance(evaluator, Evaluator)
        engine = EvaluationEngine(evaluator, workers=0)
        assert isinstance(engine, Evaluator)

    def test_engine_delegates_evaluator_surface(self):
        engine = EvaluationEngine(make_surrogate(), workers=0)
        assert engine.task is engine.evaluator.task
        assert engine.base_accuracy == engine.evaluator.base_accuracy

    def test_workers_require_buildable_config(self):
        train = tiny_dataset(num_classes=4, num_samples=32, image_size=8, seed=1)
        val = tiny_dataset(num_classes=4, num_samples=16, image_size=8, seed=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            opaque = TrainingEvaluator(
                lambda: create_model("resnet8", num_classes=4), train, val,
                pretrain_epochs=0.5,
            )
        with pytest.raises(ValueError):
            EvaluationEngine(opaque, workers=2)
        EvaluationEngine(opaque, workers=0)  # serial is always fine


class TestConfigShim:
    def test_legacy_kwargs_warn_and_work(self):
        with pytest.warns(DeprecationWarning):
            evaluator = SurrogateEvaluator(
                lambda: resnet20(num_classes=10), "resnet20", "cifar10", TASK,
                seed=7, data_fraction=0.2,
            )
        assert evaluator.seed == 7
        assert evaluator.data_fraction == 0.2

    def test_mixing_config_and_legacy_raises(self):
        with pytest.raises(TypeError):
            SurrogateEvaluator(
                lambda: resnet20(num_classes=10), "resnet20", "cifar10", TASK,
                config=EvaluatorConfig(), seed=7,
            )

    def test_unknown_kwarg_raises(self):
        with pytest.raises(TypeError):
            SurrogateEvaluator(
                lambda: resnet20(num_classes=10), "resnet20", "cifar10", TASK,
                nonsense=1,
            )

    def test_config_and_legacy_paths_agree(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = SurrogateEvaluator(
                lambda: resnet20(num_classes=10), "resnet20", "cifar10", TASK, seed=3
            )
        modern = make_surrogate(seed=3)
        assert legacy.fingerprint() == modern.fingerprint()

    def test_backend_defaults_resolved(self):
        config = EvaluatorConfig().resolved("surrogate")
        assert config.pretrain_epochs == 100.0
        assert config.model_cache_size == 32
        config = EvaluatorConfig().resolved("training")
        assert config.pretrain_epochs == 2.0
        assert config.model_cache_size == 16


class TestStableHash:
    def test_crc32_is_deterministic(self):
        assert stable_hash("C3[HP1=0.5]") == stable_hash("C3[HP1=0.5]")
        assert stable_hash("a") != stable_hash("b")

    def test_results_independent_of_pythonhashseed(self, space):
        """The old builtin-hash seeding made accuracies vary per process."""
        c3 = space.of_method("C3")
        scheme = CompressionScheme((c3[4], c3[8]))
        script = (
            "import json, sys;"
            "from repro.core import SurrogateEvaluator, EvaluatorConfig;"
            "from repro.data.tasks import EXP1, transfer_task;"
            "from repro.models import resnet20;"
            "from repro.space import StrategySpace, CompressionScheme;"
            "space = StrategySpace();"
            "c3 = space.of_method('C3');"
            "task = transfer_task(EXP1, 'resnet20', 0.27, 0.08, EXP1.model_accuracy);"
            "ev = SurrogateEvaluator(lambda: resnet20(num_classes=10), 'resnet20',"
            " 'cifar10', task, config=EvaluatorConfig(seed=0));"
            "r = ev.evaluate(CompressionScheme((c3[4], c3[8])));"
            "print(json.dumps([r.accuracy, r.params, r.cost]))"
        )
        outputs = []
        for hash_seed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (env.get("PYTHONPATH"), "src") if p
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(json.loads(proc.stdout.strip().splitlines()[-1]))
        assert outputs[0] == outputs[1]


class TestIncrementalRecord:
    def test_matches_full_rescan(self, schemes):
        from repro.core.pareto import hypervolume_2d, pareto_mask
        from repro.core.search import SearchStrategy

        evaluator = make_surrogate()
        strategy = SearchStrategy(
            evaluator, StrategySpace(), gamma=0.3, budget_hours=10.0
        )
        for scheme in schemes:
            evaluator.evaluate(scheme)
            point = strategy.record()
            everything = [
                r for r in evaluator.results.values() if not r.scheme.is_empty
            ]
            points = np.stack([r.objectives for r in everything])
            assert point.front_size == int(pareto_mask(points).sum())
            assert point.hypervolume == pytest.approx(
                hypervolume_2d(points, (-1.0, 0.0))
            )
            feasible = [r for r in everything if r.meets_target(0.3)]
            if feasible:
                best = max(feasible, key=lambda r: r.accuracy)
                assert point.best_accuracy == best.accuracy

    def test_search_result_all_results_defaults_to_list(self):
        from repro.core.search import SearchResult

        result = SearchResult(
            algorithm="x", pareto=[], front=[], trajectory=[],
            total_cost=0.0, evaluations=0, gamma=0.3,
        )
        assert result.all_results == []
