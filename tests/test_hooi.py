"""Tests for the HOOI Tucker-2 decomposition."""

import numpy as np
import pytest

from repro.compression.hooi import (
    choose_tucker_ranks,
    reconstruction_error,
    tucker2,
    tucker2_params,
    tucker2_reconstruct,
)


class TestTucker2:
    def test_full_rank_exact(self, rng):
        w = rng.normal(size=(6, 4, 3, 3))
        core, u_out, u_in = tucker2(w, 6, 4)
        np.testing.assert_allclose(tucker2_reconstruct(core, u_out, u_in), w, atol=1e-8)

    def test_factor_shapes(self, rng):
        w = rng.normal(size=(8, 5, 3, 3))
        core, u_out, u_in = tucker2(w, 3, 2)
        assert core.shape == (3, 2, 3, 3)
        assert u_out.shape == (8, 3)
        assert u_in.shape == (5, 2)

    def test_factors_orthonormal(self, rng):
        w = rng.normal(size=(8, 5, 3, 3))
        _, u_out, u_in = tucker2(w, 4, 3)
        np.testing.assert_allclose(u_out.T @ u_out, np.eye(4), atol=1e-10)
        np.testing.assert_allclose(u_in.T @ u_in, np.eye(3), atol=1e-10)

    def test_ranks_clamped_to_dims(self, rng):
        w = rng.normal(size=(4, 3, 3, 3))
        core, u_out, u_in = tucker2(w, 100, 100)
        assert core.shape[:2] == (4, 3)

    def test_invalid_rank_raises(self, rng):
        with pytest.raises(ValueError):
            tucker2(np.zeros((4, 3, 3, 3)), 0, 2)

    def test_low_rank_tensor_recovered(self, rng):
        """A tensor that IS rank (2, 2) must be reconstructed exactly."""
        core = rng.normal(size=(2, 2, 3, 3))
        u_out = np.linalg.qr(rng.normal(size=(8, 2)))[0]
        u_in = np.linalg.qr(rng.normal(size=(6, 2)))[0]
        w = tucker2_reconstruct(core, u_out, u_in)
        core2, uo2, ui2 = tucker2(w, 2, 2)
        np.testing.assert_allclose(
            tucker2_reconstruct(core2, uo2, ui2), w, atol=1e-8
        )

    def test_error_decreases_with_rank(self, rng):
        w = rng.normal(size=(10, 8, 3, 3))
        errors = []
        for rank in (2, 4, 6, 8):
            core, uo, ui = tucker2(w, rank, rank)
            errors.append(reconstruction_error(w, core, uo, ui))
        assert all(a >= b - 1e-9 for a, b in zip(errors, errors[1:]))

    def test_hooi_no_worse_than_hosvd_init(self, rng):
        """Extra HOOI sweeps should not increase reconstruction error."""
        w = rng.normal(size=(12, 10, 3, 3))
        core0, uo0, ui0 = tucker2(w, 4, 4, n_iter=0)
        core5, uo5, ui5 = tucker2(w, 4, 4, n_iter=5)
        assert reconstruction_error(w, core5, uo5, ui5) <= (
            reconstruction_error(w, core0, uo0, ui0) + 1e-9
        )


class TestRankSelection:
    def test_params_formula(self):
        assert tucker2_params(8, 4, 3, 2, 3) == 4 * 3 + 2 * 3 * 9 + 8 * 2

    def test_choose_ranks_fits_budget(self):
        f, c, k = 64, 32, 3
        budget = tucker2_params(f, c, k, 16, 8) + 5
        ro, ri = choose_tucker_ranks(f, c, k, budget)
        assert tucker2_params(f, c, k, ro, ri) <= budget
        assert ro >= 1 and ri >= 1

    def test_choose_ranks_maximal(self):
        """Budget equal to the full layer should give near-full ranks."""
        f, c, k = 16, 8, 3
        full = f * c * k * k
        ro, ri = choose_tucker_ranks(f, c, k, full * 2)
        assert ro >= f * 0.8 and ri >= c * 0.8
