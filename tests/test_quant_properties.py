"""Property-based tests for the int8/fp16 quantization substrate.

Two families of invariants, hypothesis-drawn over shapes and data:

* *round-trip bounds* — symmetric absmax quantization never clips, so the
  quantize -> dequantize error of every element is bounded by half a
  quantization step (``scale / 2``), per channel for weights and per tensor
  for activations;
* *kernel exactness* — ``quant_conv2d`` / ``quant_linear`` must agree with
  an exact int64 integer reference on the same quantized operands for every
  shape, including 1x1 kernels, strides and padding.  The fast path
  accumulates int8 products in float32 BLAS, which is exact at these
  fan-ins, so the tolerance is float32 round-off only.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn.quant import (
    dequantize_weight,
    quant_conv2d,
    quant_linear,
    quantize_activation,
    quantize_weight,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _normal(seed, shape, spread=1.0):
    rng = np.random.default_rng(seed)
    return (rng.normal(size=shape) * spread).astype(np.float32)


# --------------------------------------------------------------------------- #
# Round-trip bounds
# --------------------------------------------------------------------------- #
class TestRoundTripBounds:
    @given(
        seed=seeds,
        f=st.integers(1, 6),
        c=st.integers(1, 5),
        k=st.sampled_from([1, 3, 5]),
        spread=st.sampled_from([1e-3, 1.0, 100.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_weight_round_trip_error_within_half_step(self, seed, f, c, k, spread):
        w = _normal(seed, (f, c, k, k), spread)
        qw, scale = quantize_weight(w)
        assert qw.dtype == np.int8 and scale.shape == (f,)
        back = dequantize_weight(qw, scale)
        # symmetric absmax scaling never clips, so error <= scale/2 per channel
        err = np.abs(back - w).max(axis=(1, 2, 3))
        assert np.all(err <= scale / 2 + 1e-7 * spread)

    @given(seed=seeds, out=st.integers(1, 8), inp=st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_linear_weight_round_trip(self, seed, out, inp):
        w = _normal(seed, (out, inp))
        qw, scale = quantize_weight(w)
        err = np.abs(dequantize_weight(qw, scale) - w).max(axis=1)
        assert np.all(err <= scale / 2 + 1e-7)

    @given(
        seed=seeds,
        shape=st.sampled_from([(3,), (2, 7), (1, 3, 5, 5), (4, 2, 1, 1)]),
        spread=st.sampled_from([1e-3, 1.0, 50.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_activation_round_trip_error_within_half_step(self, seed, shape, spread):
        x = _normal(seed, shape, spread)
        xq, scale = quantize_activation(x)
        assert xq.dtype == np.int8 and scale > 0
        assert np.abs(xq.astype(np.float32) * scale - x).max() <= scale / 2 + 1e-7 * spread

    def test_all_zero_tensors_quantize_cleanly(self):
        qw, w_scale = quantize_weight(np.zeros((2, 3, 3, 3), dtype=np.float32))
        xq, x_scale = quantize_activation(np.zeros((2, 8), dtype=np.float32))
        assert not qw.any() and not xq.any()
        assert np.all(w_scale > 0) and x_scale > 0


# --------------------------------------------------------------------------- #
# Kernel exactness vs the int64 integer reference
# --------------------------------------------------------------------------- #
def _conv2d_int64_reference(xq, qweight, stride, padding):
    n, c, h, w = xq.shape
    f, _, kh, kw = qweight.shape
    if padding:
        xq = np.pad(xq, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    ho = (h + 2 * padding - kh) // stride + 1
    wo = (w + 2 * padding - kw) // stride + 1
    out = np.zeros((n, f, ho, wo), dtype=np.int64)
    xi, wi = xq.astype(np.int64), qweight.astype(np.int64)
    for i in range(ho):
        for j in range(wo):
            patch = xi[:, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
            out[:, :, i, j] = np.einsum("ncij,fcij->nf", patch, wi)
    return out


class TestKernelExactness:
    @given(
        seed=seeds,
        n=st.integers(1, 3),
        c=st.integers(1, 5),
        f=st.integers(1, 6),
        k=st.sampled_from([1, 3]),
        stride=st.integers(1, 2),
        padding=st.integers(0, 1),
        extra=st.integers(0, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_quant_conv2d_matches_integer_reference(
        self, seed, n, c, f, k, stride, padding, extra
    ):
        h = k + extra  # guarantees at least one valid output position
        x = _normal(seed, (n, c, h, h))
        w = _normal(seed + 1, (f, c, k, k))
        qw, w_scale = quantize_weight(w)
        xq, x_scale = quantize_activation(x)
        got = quant_conv2d(
            Tensor(x), qw, w_scale, stride=stride, padding=padding, x_scale=x_scale
        ).data
        ref = _conv2d_int64_reference(xq, qw, stride, padding)
        expected = ref.astype(np.float64) * (x_scale * w_scale)[None, :, None, None]
        np.testing.assert_allclose(got, expected, rtol=1e-6, atol=1e-6)

    @given(
        seed=seeds,
        n=st.integers(1, 6),
        inp=st.integers(1, 32),
        out=st.integers(1, 9),
    )
    @settings(max_examples=30, deadline=None)
    def test_quant_linear_matches_integer_reference(self, seed, n, inp, out):
        x = _normal(seed, (n, inp))
        w = _normal(seed + 1, (out, inp))
        qw, w_scale = quantize_weight(w)
        xq, x_scale = quantize_activation(x)
        got = quant_linear(Tensor(x), qw, w_scale, x_scale=x_scale).data
        ref = xq.astype(np.int64) @ qw.astype(np.int64).T
        expected = ref.astype(np.float64) * (x_scale * w_scale)[None, :]
        np.testing.assert_allclose(got, expected, rtol=1e-6, atol=1e-6)

    @given(seed=seeds, stride=st.integers(1, 2))
    @settings(max_examples=15, deadline=None)
    def test_one_by_one_kernels_with_bias_and_relu(self, seed, stride):
        """1x1 convs are the pointwise fast case — bias/ReLU fusion included."""
        x = _normal(seed, (2, 4, 5, 5))
        w = _normal(seed + 1, (3, 4, 1, 1))
        b = _normal(seed + 2, (3,))
        qw, w_scale = quantize_weight(w)
        xq, x_scale = quantize_activation(x)
        got = quant_conv2d(
            Tensor(x), qw, w_scale, bias=b, stride=stride,
            x_scale=x_scale, activation="relu",
        ).data
        ref = _conv2d_int64_reference(xq, qw, stride, 0).astype(np.float64)
        expected = np.maximum(
            ref * (x_scale * w_scale)[None, :, None, None] + b[None, :, None, None],
            0.0,
        )
        np.testing.assert_allclose(got, expected, rtol=1e-6, atol=1e-6)

    def test_backward_through_quant_kernels_is_refused(self):
        x = Tensor(np.ones((1, 4), dtype=np.float32), requires_grad=True)
        qw, w_scale = quantize_weight(np.ones((2, 4), dtype=np.float32))
        out = quant_linear(x, qw, w_scale)
        with pytest.raises(RuntimeError, match="inference-only"):
            out.sum().backward()
