"""Property-based tests for the repro.nn autodiff substrate.

Two families of invariants:

* *gradient correctness* — for randomly composed Conv2d/BatchNorm2d/Linear
  stacks, the analytic gradient of a scalar loss matches a central-difference
  numerical gradient on every parameter;
* *algebraic identities* — tensor ops that must commute or cancel
  (``sum`` is reshape/transpose-invariant, ``mean == sum / size``,
  ``transpose∘transpose == id``) do so in both value and gradient.

Hypothesis draws the architectures/shapes; examples stay tiny because
central differences probe every parameter entry.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import BatchNorm2d, Conv2d, Flatten, Linear, ReLU, Sequential, Tensor
from repro.nn.layers import GlobalAvgPool2d

from .conftest import numeric_gradient

# Central-difference gradient checks need float64 precision.
pytestmark = pytest.mark.usefixtures("float64_gradcheck")


def _loss(model, x_data):
    """Scalar loss of the model on fixed input (squared sum is curvature-rich)."""
    out = model(Tensor(x_data))
    return (out * out).sum()


def _check_param_gradients(model, x_data, atol=5e-4):
    loss = _loss(model, x_data)
    for p in model.parameters():
        p.zero_grad()
    loss.backward()
    for name, param in model.named_parameters():
        numeric = numeric_gradient(
            lambda: float(_loss(model, x_data).item()), param.data, eps=1e-5
        )
        np.testing.assert_allclose(
            param.grad, numeric, atol=atol, rtol=1e-3,
            err_msg=f"gradient mismatch in {name}",
        )


conv_specs = st.lists(
    st.tuples(
        st.integers(1, 3),                # out_channels
        st.sampled_from([1, 3]),          # kernel_size
        st.booleans(),                    # follow with BatchNorm2d
        st.booleans(),                    # follow with ReLU
    ),
    min_size=1,
    max_size=2,
)


class TestRandomGraphGradients:
    @settings(max_examples=10, deadline=None)
    @given(specs=conv_specs, channels=st.integers(1, 2), size=st.sampled_from([4, 5]))
    def test_conv_bn_relu_stack(self, specs, channels, size):
        rng = np.random.default_rng(0)
        layers = []
        in_channels = channels
        for out_channels, kernel, use_bn, use_relu in specs:
            layers.append(
                Conv2d(in_channels, out_channels, kernel, padding=kernel // 2, rng=rng)
            )
            if use_bn:
                layers.append(BatchNorm2d(out_channels))
            if use_relu:
                layers.append(ReLU())
            in_channels = out_channels
        model = Sequential(*layers)
        model.eval()  # deterministic BN: numeric probing must not move stats
        x = rng.normal(size=(2, channels, size, size))
        _check_param_gradients(model, x)

    @settings(max_examples=10, deadline=None)
    @given(
        widths=st.lists(st.integers(1, 5), min_size=1, max_size=3),
        batch=st.integers(1, 3),
    )
    def test_linear_relu_stack(self, widths, batch):
        rng = np.random.default_rng(1)
        layers = []
        in_features = 4
        for width in widths:
            layers.append(Linear(in_features, width, rng=rng))
            layers.append(ReLU())
            in_features = width
        layers.append(Linear(in_features, 2, rng=rng))
        model = Sequential(*layers)
        x = rng.normal(size=(batch, 4))
        _check_param_gradients(model, x)

    @settings(max_examples=6, deadline=None)
    @given(channels=st.integers(1, 2), classes=st.integers(2, 4))
    def test_conv_pool_flatten_linear_head(self, channels, classes):
        """The canonical image-classifier shape, end to end."""
        rng = np.random.default_rng(2)
        model = Sequential(
            Conv2d(channels, 2, 3, padding=1, rng=rng),
            BatchNorm2d(2),
            ReLU(),
            GlobalAvgPool2d(),
            Flatten(),
            Linear(2, classes, rng=rng),
        )
        model.eval()
        x = rng.normal(size=(2, channels, 4, 4))
        _check_param_gradients(model, x)

    @settings(max_examples=8, deadline=None)
    @given(batch=st.integers(2, 4), features=st.integers(1, 3))
    def test_batchnorm_training_mode_gradients(self, batch, features):
        """BN's batch-statistics path (training mode) also differentiates.

        Running stats mutate per forward, so gradients are checked against a
        stats-frozen closure: clone the module state before each probe.
        """
        rng = np.random.default_rng(3)
        bn = BatchNorm2d(features)
        bn.train()
        x_data = rng.normal(size=(batch, features, 3, 3))

        def loss():
            bn.running_mean[:] = 0.0
            bn.running_var[:] = 1.0
            out = bn(Tensor(x_data))
            return (out * out).sum()

        value = loss()
        for p in bn.parameters():
            p.zero_grad()
        value.backward()
        for name, param in bn.named_parameters():
            numeric = numeric_gradient(lambda: float(loss().item()), param.data, eps=1e-5)
            np.testing.assert_allclose(
                param.grad, numeric, atol=5e-4, rtol=1e-3,
                err_msg=f"gradient mismatch in {name}",
            )


# --------------------------------------------------------------------------- #
shapes = st.sampled_from([(2, 3), (4,), (2, 2, 3), (1, 6), (3, 2, 1)])


class TestAlgebraicIdentities:
    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 2**16))
    def test_sum_is_reshape_invariant(self, shape, seed):
        data = np.random.default_rng(seed).normal(size=shape)
        direct = Tensor(data, requires_grad=True)
        reshaped = Tensor(data, requires_grad=True)

        s1 = direct.sum()
        s2 = reshaped.reshape(-1).sum()
        assert s1.item() == s2.item()
        s1.backward()
        s2.backward()
        np.testing.assert_array_equal(direct.grad, reshaped.grad)

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 2**16))
    def test_mean_equals_sum_over_size(self, shape, seed):
        data = np.random.default_rng(seed).normal(size=shape)
        a = Tensor(data, requires_grad=True)
        b = Tensor(data, requires_grad=True)
        m = a.mean()
        s = b.sum() * (1.0 / data.size)
        np.testing.assert_allclose(m.item(), s.item(), rtol=1e-12)
        m.backward()
        s.backward()
        np.testing.assert_allclose(a.grad, b.grad, rtol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(1, 4), cols=st.integers(1, 4), seed=st.integers(0, 2**16)
    )
    def test_transpose_involution(self, rows, cols, seed):
        data = np.random.default_rng(seed).normal(size=(rows, cols))
        x = Tensor(data, requires_grad=True)
        roundtrip = x.transpose().transpose()
        np.testing.assert_array_equal(roundtrip.data, data)
        (roundtrip * roundtrip).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * data, rtol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 2**16))
    def test_sum_is_transpose_invariant(self, shape, seed):
        data = np.random.default_rng(seed).normal(size=shape)
        plain = Tensor(data, requires_grad=True)
        flipped = Tensor(data, requires_grad=True)
        axes = tuple(reversed(range(len(shape))))
        s1 = plain.sum()
        s2 = flipped.transpose(*axes).sum()
        np.testing.assert_allclose(s1.item(), s2.item(), rtol=1e-12)
        s1.backward()
        s2.backward()
        np.testing.assert_array_equal(plain.grad, flipped.grad)

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 2**16))
    def test_add_mul_distribute(self, shape, seed):
        """(x + x) * c == 2c * x, values and gradients."""
        data = np.random.default_rng(seed).normal(size=shape)
        a = Tensor(data, requires_grad=True)
        b = Tensor(data, requires_grad=True)
        lhs = ((a + a) * 3.0).sum()
        rhs = (b * 6.0).sum()
        np.testing.assert_allclose(lhs.item(), rhs.item(), rtol=1e-12)
        lhs.backward()
        rhs.backward()
        np.testing.assert_allclose(a.grad, b.grad, rtol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(1, 3), inner=st.integers(1, 3), cols=st.integers(1, 3),
        seed=st.integers(0, 2**16),
    )
    def test_matmul_transpose_identity(self, rows, inner, cols, seed):
        """(A @ B)^T == B^T @ A^T with matching gradients."""
        rng = np.random.default_rng(seed)
        a_data = rng.normal(size=(rows, inner))
        b_data = rng.normal(size=(inner, cols))
        a1, b1 = Tensor(a_data, requires_grad=True), Tensor(b_data, requires_grad=True)
        a2, b2 = Tensor(a_data, requires_grad=True), Tensor(b_data, requires_grad=True)
        lhs = (a1 @ b1).transpose()
        rhs = b2.transpose() @ a2.transpose()
        np.testing.assert_allclose(lhs.data, rhs.data, rtol=1e-12)
        (lhs * lhs).sum().backward()
        (rhs * rhs).sum().backward()
        np.testing.assert_allclose(a1.grad, a2.grad, rtol=1e-10)
        np.testing.assert_allclose(b1.grad, b2.grad, rtol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 2**16))
    def test_relu_split_identity(self, shape, seed):
        """x == relu(x) - relu(-x), values and (a.e.) gradients."""
        data = np.random.default_rng(seed).normal(size=shape)
        # avoid the kink: keep every entry away from 0
        data = np.where(np.abs(data) < 1e-3, 1e-3, data)
        a = Tensor(data, requires_grad=True)
        b = Tensor(data, requires_grad=True)
        lhs = a.sum()
        rhs = (b.relu() - (-b).relu()).sum()
        np.testing.assert_allclose(lhs.item(), rhs.item(), rtol=1e-12)
        lhs.backward()
        rhs.backward()
        np.testing.assert_allclose(a.grad, b.grad, rtol=1e-12)
