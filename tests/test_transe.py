"""Tests for the TransE baseline embedder."""

import numpy as np
import pytest

from repro.knowledge import TransE, TransEConfig, build_knowledge_graph
from repro.space import StrategySpace


@pytest.fixture(scope="module")
def graph():
    return build_knowledge_graph(StrategySpace(method_labels=["C3", "C4"]))


class TestTransE:
    def test_loss_decreases(self, graph):
        model = TransE(graph.num_entities, graph.num_relations, TransEConfig(dim=16, seed=0))
        losses = model.fit(graph.triplets, epochs=6)
        assert losses[-1] < losses[0]

    def test_true_beats_corrupted(self, graph):
        model = TransE(graph.num_entities, graph.num_relations, TransEConfig(seed=1))
        model.fit(graph.triplets, epochs=8)
        t = graph.triplets
        rng = np.random.default_rng(0)
        pos = model.score(t[:, 0], t[:, 1], t[:, 2]).mean()
        neg = model.score(
            t[:, 0], t[:, 1], rng.integers(0, graph.num_entities, len(t))
        ).mean()
        assert pos < neg

    def test_entity_norms_bounded(self, graph):
        model = TransE(graph.num_entities, graph.num_relations)
        model.fit(graph.triplets, epochs=3)
        assert (np.linalg.norm(model.entities, axis=1) <= 1.0 + 1e-9).all()

    def test_deterministic_by_seed(self, graph):
        a = TransE(graph.num_entities, graph.num_relations, TransEConfig(seed=5))
        b = TransE(graph.num_entities, graph.num_relations, TransEConfig(seed=5))
        a.fit(graph.triplets, epochs=2)
        b.fit(graph.triplets, epochs=2)
        np.testing.assert_array_equal(a.entities, b.entities)
