"""Tests for the model zoo and its pruning graphs."""

import numpy as np
import pytest

from repro.models import (
    ResNet,
    VGG,
    available_models,
    create_model,
    register_model,
    resnet8,
    resnet20,
    resnet56,
    resnet164,
    vgg8_tiny,
    vgg13,
    vgg16,
    vgg19,
)
from repro.nn import Tensor


class TestResNet:
    def test_depth_validation(self):
        with pytest.raises(ValueError, match="6n\\+2"):
            ResNet(depth=17)

    @pytest.mark.parametrize("factory,depth", [(resnet20, 20), (resnet56, 56)])
    def test_block_count(self, factory, depth):
        model = factory()
        n = (depth - 2) // 6
        assert len(list(model.blocks)) == 3 * n

    def test_forward_shape(self, rng):
        model = resnet8(num_classes=4)
        out = model(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 4)

    def test_pruning_units_one_per_block(self):
        model = resnet8()
        units = model.pruning_units()
        assert len(units) == len(list(model.blocks))
        for unit in units:
            assert unit.bn is not None
            assert len(unit.consumers) == 1

    def test_resnet164_depth(self):
        model = resnet164()
        assert len(list(model.blocks)) == 81

    def test_deterministic_by_seed(self):
        a, b = resnet8(seed=3), resnet8(seed=3)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)
        c = resnet8(seed=4)
        diffs = [
            np.abs(pa.data - pc.data).sum()
            for (_, pa), (_, pc) in zip(a.named_parameters(), c.named_parameters())
            if pa.size > 1
        ]
        assert sum(diffs) > 0


class TestVGG:
    def test_depth_validation(self):
        with pytest.raises(ValueError, match="unsupported"):
            VGG(depth=15)

    def test_forward_shape(self, rng):
        model = vgg8_tiny(num_classes=4)
        out = model(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 4)

    @pytest.mark.parametrize(
        "factory,conv_count", [(vgg13, 10), (vgg16, 13), (vgg19, 16)]
    )
    def test_conv_counts(self, factory, conv_count):
        model = factory()
        assert len(model.pruning_units()) == conv_count

    def test_last_unit_feeds_classifier(self):
        model = vgg8_tiny()
        units = model.pruning_units()
        assert units[-1].consumers == [model.classifier]

    def test_width_mult_scales_params(self):
        narrow = vgg16(width_mult=0.5)
        full = vgg16(width_mult=1.0)
        assert narrow.num_parameters() < full.num_parameters() / 2.5

    def test_ordering_of_sizes(self):
        assert vgg13().num_parameters() < vgg16().num_parameters() < vgg19().num_parameters()


class TestRegistry:
    def test_available_contains_paper_models(self):
        names = available_models()
        for required in ("resnet20", "resnet56", "resnet164", "vgg13", "vgg16", "vgg19"):
            assert required in names

    def test_create_model(self):
        model = create_model("resnet20", num_classes=100)
        assert model.num_classes == 100

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            create_model("alexnet")

    def test_register_custom(self):
        register_model("custom_tiny", lambda num_classes=10, seed=0: resnet8(num_classes, seed=seed))
        assert "custom_tiny" in available_models()
        assert create_model("custom_tiny", num_classes=2).num_classes == 2
