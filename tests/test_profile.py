"""Tests for parameter/FLOP accounting."""

import pytest

from repro.models import resnet20, resnet56, vgg16
from repro.nn import (
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    ReLU,
    Sequential,
    count_flops,
    count_params,
    profile_model,
)


class TestCounting:
    def test_linear_flops_exact(self):
        layer = Sequential(Linear(10, 5))
        # 2 * in * out per sample, plus one add per output for the bias
        # (counted the same way as conv2d's bias).
        assert count_flops(layer, (10,)) == 2 * 10 * 5 + 5

    def test_linear_without_bias_flops_exact(self):
        layer = Sequential(Linear(10, 5, bias=False))
        assert count_flops(layer, (10,)) == 2 * 10 * 5

    def test_conv_flops_exact(self):
        conv = Sequential(Conv2d(3, 8, 3, padding=1, bias=False))
        flops = count_flops(conv, (3, 4, 4))
        assert flops == 2 * 4 * 4 * 8 * 3 * 3 * 3  # 2*Ho*Wo*F*C*k*k

    def test_bias_adds_flops(self):
        with_bias = count_flops(Sequential(Conv2d(3, 8, 3)), (3, 6, 6))
        without = count_flops(Sequential(Conv2d(3, 8, 3, bias=False)), (3, 6, 6))
        assert with_bias == without + 8 * 4 * 4

    def test_count_params_matches_module(self):
        net = Sequential(Conv2d(3, 4, 3), Linear(4, 2))
        assert count_params(net) == net.num_parameters()

    def test_profile_restores_training_mode(self):
        net = Sequential(Conv2d(3, 4, 3, padding=1), ReLU(), GlobalAvgPool2d(), Linear(4, 2))
        net.train()
        profile_model(net, (3, 8, 8))
        assert net.training


class TestPaperNumbers:
    """The profiles should land on the paper's Table 2 baseline row."""

    def test_vgg16_cifar100_matches_table2(self):
        profile = profile_model(vgg16(num_classes=100), (3, 32, 32))
        assert profile.params_m == pytest.approx(14.77, abs=0.05)
        assert profile.flops_g == pytest.approx(0.63, abs=0.02)

    def test_resnet56_cifar10_close_to_table2(self):
        profile = profile_model(resnet56(num_classes=10), (3, 32, 32))
        assert profile.params_m == pytest.approx(0.90, abs=0.08)
        assert profile.flops_g == pytest.approx(0.27, abs=0.04)

    def test_resnet20_smaller_than_resnet56(self):
        p20 = profile_model(resnet20(), (3, 32, 32))
        p56 = profile_model(resnet56(), (3, 32, 32))
        assert p20.params < p56.params
        assert p20.flops < p56.flops

    def test_str_format(self):
        profile = profile_model(resnet20(), (3, 32, 32))
        assert "params" in str(profile) and "FLOPs" in str(profile)
