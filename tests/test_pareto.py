"""Tests + properties for Pareto utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.pareto import (
    crowding_distance,
    hypervolume_2d,
    nondominated_sort,
    pareto_indices,
    pareto_mask,
    select_diverse,
)


def _points(n=8):
    return arrays(
        np.float64,
        (n, 2),
        elements=st.floats(-1, 1, allow_nan=False, allow_infinity=False),
    )


class TestParetoMask:
    def test_simple_domination(self):
        points = np.array([[1, 1], [0, 0], [2, 0], [0, 2]])
        mask = pareto_mask(points)
        np.testing.assert_array_equal(mask, [True, False, True, True])

    def test_duplicates_both_kept(self):
        points = np.array([[1, 1], [1, 1], [0, 0]])
        mask = pareto_mask(points)
        assert mask[0] and mask[1] and not mask[2]

    def test_single_point(self):
        assert pareto_mask(np.array([[3.0, 4.0]])).all()

    def test_indices_consistent(self):
        points = np.array([[1, 0], [0, 1], [0.5, 0.5], [0.1, 0.1]])
        idx = pareto_indices(points)
        assert set(idx) == {0, 1, 2}


class TestNondominatedSort:
    def test_fronts_partition_everything(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(30, 2))
        fronts = nondominated_sort(points)
        flat = np.concatenate(fronts)
        assert sorted(flat.tolist()) == list(range(30))

    def test_first_front_is_pareto(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(20, 2))
        fronts = nondominated_sort(points)
        np.testing.assert_array_equal(np.sort(fronts[0]), pareto_indices(points))

    def test_later_fronts_dominated_by_earlier(self):
        points = np.array([[2, 2], [1, 1], [0, 0]])
        fronts = nondominated_sort(points)
        assert [f.tolist() for f in fronts] == [[0], [1], [2]]


class TestCrowding:
    def test_extremes_infinite(self):
        points = np.array([[0, 0], [1, 1], [2, 2], [3, 3]])
        d = crowding_distance(points)
        assert np.isinf(d[0]) and np.isinf(d[3])
        assert np.isfinite(d[1]) and np.isfinite(d[2])

    def test_small_sets_all_infinite(self):
        assert np.isinf(crowding_distance(np.array([[1.0, 2.0]]))).all()
        assert np.isinf(crowding_distance(np.array([[1.0, 2.0], [2.0, 1.0]]))).all()

    def test_denser_regions_lower_distance(self):
        points = np.array([[0, 3.0], [0.1, 2.9], [0.2, 2.8], [3.0, 0.0]])
        d = crowding_distance(points)
        assert d[1] < np.inf
        # middle of the tight cluster is more crowded than the gap point
        assert d[1] <= d[2] or np.isinf(d[2])


class TestHypervolume:
    def test_known_rectangle(self):
        points = np.array([[1.0, 1.0]])
        assert hypervolume_2d(points, (0, 0)) == pytest.approx(1.0)

    def test_two_point_staircase(self):
        points = np.array([[2.0, 1.0], [1.0, 2.0]])
        assert hypervolume_2d(points, (0, 0)) == pytest.approx(3.0)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume_2d(np.array([[2.0, 2.0]]), (0, 0))
        more = hypervolume_2d(np.array([[2.0, 2.0], [1.0, 1.0]]), (0, 0))
        assert more == pytest.approx(base)

    def test_points_below_reference_ignored(self):
        assert hypervolume_2d(np.array([[-1.0, -1.0]]), (0, 0)) == 0.0

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            hypervolume_2d(np.zeros((3, 3)), (0, 0, 0))


class TestSelectDiverse:
    def test_small_front_returned_whole(self):
        points = np.array([[1, 0], [0, 1]])
        assert set(select_diverse(points, 5)) == {0, 1}

    def test_cap_respected(self):
        rng = np.random.default_rng(2)
        # anti-correlated points: most are on the front
        x = rng.uniform(0, 1, 50)
        points = np.stack([x, 1 - x], axis=1)
        chosen = select_diverse(points, 7)
        assert len(chosen) == 7
        assert (pareto_mask(points)[chosen]).all()


class TestHypothesisProperties:
    @settings(max_examples=40, deadline=None)
    @given(_points(10))
    def test_front_members_not_dominated(self, points):
        mask = pareto_mask(points)
        assert mask.any()
        front = points[mask]
        for p in front:
            dominated = np.all(points >= p, axis=1) & np.any(points > p, axis=1)
            assert not dominated.any()

    @settings(max_examples=40, deadline=None)
    @given(_points(8))
    def test_adding_dominated_point_keeps_hv(self, points):
        hv = hypervolume_2d(points, (-2, -2))
        worst = points.min(axis=0) - 0.5
        hv2 = hypervolume_2d(np.vstack([points, worst]), (-2, -2))
        assert hv2 == pytest.approx(hv)

    @settings(max_examples=40, deadline=None)
    @given(_points(8))
    def test_hv_monotone_in_reference(self, points):
        assert hypervolume_2d(points, (-2, -2)) >= hypervolume_2d(points, (-1, -1)) - 1e-12
