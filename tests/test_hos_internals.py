"""Unit tests for HOS scoring criteria and aggregation modes."""

import numpy as np
import pytest

from repro.compression.hos import (
    _aggregate,
    _score_k34,
    _score_l1,
    _score_skew_kur,
    _standardized_moments,
)
from repro.models import vgg8_tiny


@pytest.fixture()
def unit():
    return vgg8_tiny(num_classes=4, seed=0).pruning_units()[1]


class TestMoments:
    def test_gaussian_filters_near_zero_moments(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(4, 64, 5, 5))  # large filters -> tight estimate
        moments = _standardized_moments(w)
        assert np.abs(moments[:, 0]).max() < 0.3  # skewness ~ 0
        assert np.abs(moments[:, 1]).max() < 0.5  # excess kurtosis ~ 0

    def test_skewed_filter_detected(self):
        rng = np.random.default_rng(0)
        w = np.stack([
            rng.normal(size=(3, 3, 3)),
            rng.exponential(size=(3, 3, 3)),  # strongly right-skewed
        ])
        moments = _standardized_moments(w)
        assert moments[1, 0] > moments[0, 0] + 0.5

    def test_matches_naive_formula(self):
        rng = np.random.default_rng(1)
        w = rng.normal(size=(2, 4, 3, 3))
        moments = _standardized_moments(w)
        flat = w.reshape(2, -1)
        for i in range(2):
            z = (flat[i] - flat[i].mean()) / flat[i].std()
            assert moments[i, 0] == pytest.approx((z ** 3).mean(), abs=1e-9)
            assert moments[i, 1] == pytest.approx((z ** 4).mean() - 3, abs=1e-9)


class TestCriteria:
    def test_score_shapes(self, unit):
        n = unit.out_channels
        assert _score_l1(unit).shape == (n,)
        assert _score_k34(unit).shape == (n,)
        assert _score_skew_kur(unit).shape == (n,)

    def test_scores_nonnegative(self, unit):
        assert (_score_l1(unit) >= 0).all()
        assert (_score_k34(unit) >= 0).all()
        assert (_score_skew_kur(unit) >= 0).all()


class TestAggregation:
    def test_p1_zero_mean_unit_std(self):
        scores = np.array([1.0, 2.0, 3.0, 4.0])
        z = _aggregate(scores, "P1")
        assert z.mean() == pytest.approx(0.0, abs=1e-12)
        assert z.std() == pytest.approx(1.0, abs=1e-9)

    def test_p2_identity(self):
        scores = np.array([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(_aggregate(scores, "P2"), scores)

    def test_p3_rank_normalised(self):
        scores = np.array([30.0, 10.0, 20.0])
        ranks = _aggregate(scores, "P3")
        np.testing.assert_allclose(ranks, [1.0, 0.0, 0.5])

    def test_p3_preserves_order(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=20)
        ranks = _aggregate(scores, "P3")
        np.testing.assert_array_equal(np.argsort(scores), np.argsort(ranks))

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown HP11"):
            _aggregate(np.ones(3), "P4")

    def test_aggregation_changes_global_ranking(self):
        """P1 (z-scored) and P2 (raw) can globally rank layers differently —
        the point of having HP11 in the search space."""
        small_layer = np.array([1.0, 1.1, 1.2])
        big_layer = np.array([10.0, 20.0, 30.0])
        raw = np.concatenate([_aggregate(small_layer, "P2"), _aggregate(big_layer, "P2")])
        z = np.concatenate([_aggregate(small_layer, "P1"), _aggregate(big_layer, "P1")])
        # Raw: the small layer loses all its channels first.
        assert set(np.argsort(raw)[:3]) == {0, 1, 2}
        # Z-scored: the bottom three mix both layers.
        assert set(np.argsort(z)[:3]) != {0, 1, 2}
