"""Tests for the static analysis subsystem (verifier, linter, anomaly mode).

Corruption tests follow one pattern: take a healthy model, apply a *partial*
structural edit (the kind a buggy surgery pass would produce), and assert the
verifier flags it with the documented rule id — without ever running a
forward pass.
"""

import numpy as np
import pytest

from repro.analysis import (
    AnomalyError,
    Report,
    SchemeRejected,
    Severity,
    VerificationError,
    anomaly_enabled,
    assert_valid,
    detect_anomaly,
    lint_scheme,
    trace_model,
    verify_checkpoint,
    verify_model,
)
from repro.compression import (
    EXTENSION_METHODS,
    METHODS,
    BasisConv2d,
    ExecutionContext,
    SurgeryError,
    TuckerConv2d,
)
from repro.compression.surgery import (
    check_unit,
    prune_unit,
    self_verifying_surgery,
    shrink_bn,
    shrink_input,
    shrink_output,
)
from repro.core.evaluator import SchemeEvaluator
from repro.models import available_models, create_model, resnet8, vgg8_tiny
from repro.nn import Conv2d, Flatten, Linear, Module, Sequential, Tensor, Trainer
from repro.nn.serialization import load_state, save_model
from repro.space import CompressionScheme, make_strategy
from repro.space.strategy import CompressionStrategy

TINY_SHAPE = (3, 8, 8)

HP_DEFAULTS = {
    "HP1": 0.2, "HP2": 0.2, "HP4": 3, "HP5": 0.5, "HP6": 0.9, "HP7": 0.4,
    "HP8": "l2_weight", "HP9": 0.2, "HP10": 3, "HP11": "P1", "HP12": "l1norm",
    "HP13": 0.3, "HP14": 1, "HP15": 1.0, "HP16": "MSE", "HP17": 5, "HP18": 0.5,
}


def _strategy(label, **overrides):
    hp = dict(HP_DEFAULTS)
    hp.update(overrides)
    return make_strategy(label, hp)


def _scheme(*strategies):
    return CompressionScheme(tuple(strategies))


# --------------------------------------------------------------------------- #
# Verifier: healthy models
# --------------------------------------------------------------------------- #
class TestVerifierCleanModels:
    @pytest.mark.parametrize("name", available_models())
    def test_registered_models_verify_clean(self, name):
        report = verify_model(create_model(name), name=name)
        assert report.is_clean, report.format(verbose=True)
        assert report.graph.output is not None

    def test_trace_graph_contents(self):
        graph = trace_model(resnet8(num_classes=4), input_shape=TINY_SHAPE)
        assert graph.output.channels == 4
        assert not graph.output.spatial
        assert graph.node("classifier").kind == "Linear"
        assert len(graph) > 10

    def test_assert_valid_passes(self):
        assert_valid(vgg8_tiny(num_classes=4), input_shape=TINY_SHAPE)

    @pytest.mark.parametrize("label", sorted(METHODS) + sorted(EXTENSION_METHODS))
    @pytest.mark.parametrize("factory", [resnet8, vgg8_tiny], ids=["resnet", "vgg"])
    def test_every_method_output_verifies_clean(self, label, factory):
        model = factory(num_classes=4)
        method = METHODS.get(label) or EXTENSION_METHODS[label]
        ctx = ExecutionContext(
            original_params=model.num_parameters(), train_enabled=False, seed=0
        )
        method.apply(model, dict(HP_DEFAULTS), ctx)
        report = verify_model(model, input_shape=TINY_SHAPE, name=f"{label}")
        assert not report.has_errors, report.format(verbose=True)


# --------------------------------------------------------------------------- #
# Verifier: seeded corruptions
# --------------------------------------------------------------------------- #
class TestVerifierCorruptions:
    def test_mismatched_bn_flagged_v002(self):
        model = resnet8(num_classes=4)
        block = model.blocks._modules["0"]
        shrink_bn(block.bn1, np.arange(block.bn1.num_features - 3))
        report = verify_model(model, input_shape=TINY_SHAPE)
        assert "V002" in report.rules(), report.format(verbose=True)

    def test_broken_shortcut_flagged_v004(self):
        model = resnet8(num_classes=4)
        block = model.blocks._modules["0"]
        keep = np.arange(block.conv2.out_channels - 2)
        shrink_output(block.conv2, keep)
        shrink_bn(block.bn2, keep)
        report = verify_model(model, input_shape=TINY_SHAPE)
        assert "V004" in report.rules(), report.format(verbose=True)

    def test_bad_linear_fanin_flagged_v003(self):
        model = resnet8(num_classes=4)
        shrink_input(model.classifier, np.arange(model.classifier.in_features - 4))
        report = verify_model(model, input_shape=TINY_SHAPE)
        assert "V003" in report.rules()

    def test_conv_chain_mismatch_flagged_v001(self):
        model = vgg8_tiny(num_classes=4)
        convs = [m for m in model.features._modules.values() if isinstance(m, Conv2d)]
        # Shrink one conv's output without rewiring its consumer.
        shrink_output(convs[0], np.arange(convs[0].out_channels - 2))
        report = verify_model(model, input_shape=TINY_SHAPE)
        assert "V001" in report.rules()

    def test_zero_width_conv_flagged_v007(self):
        conv = Conv2d(3, 4, 3, padding=1)
        conv.weight.data = conv.weight.data[:0]
        report = verify_model(Sequential(conv), input_shape=TINY_SHAPE)
        assert "V007" in report.rules()

    def test_nan_parameter_flagged_v009(self):
        model = resnet8(num_classes=4)
        model.conv1.weight.data[0, 0, 0, 0] = np.nan
        report = verify_model(model, input_shape=TINY_SHAPE)
        assert "V009" in report.rules()
        with pytest.raises(VerificationError):
            report.raise_on_error()

    def test_tucker_rank_mismatch_flagged_v005(self):
        rng = np.random.default_rng(0)
        tucker = TuckerConv2d(
            in_factor=rng.normal(size=(8, 3)),
            core=rng.normal(size=(4, 3, 3, 3)),
            out_factor=rng.normal(size=(16, 4)),
            bias=None,
            stride=1,
            padding=1,
        )
        # Corrupt: slice the first factor's rank without touching the core.
        tucker.first_weight.data = tucker.first_weight.data[:2]
        model = Sequential(Conv2d(3, 8, 3, padding=1), tucker)
        report = verify_model(model, input_shape=TINY_SHAPE)
        assert "V005" in report.rules(), report.format(verbose=True)

    def test_inflated_basis_flagged_v006(self):
        rng = np.random.default_rng(0)
        basis = BasisConv2d(
            basis=rng.normal(size=(16, 8, 3, 3)),  # basis as large as filter count
            coefficients=rng.normal(size=(16, 16)),
            bias=None,
            stride=1,
            padding=1,
        )
        model = Sequential(Conv2d(3, 8, 3, padding=1), basis)
        report = verify_model(model, input_shape=TINY_SHAPE)
        assert "V006" in report.rules()
        assert not report.has_errors  # inflated rank is a warning, not an error

    def test_spatial_collapse_flagged_v008(self):
        model = Sequential(
            Conv2d(3, 4, 3), Conv2d(4, 4, 3), Conv2d(4, 4, 3), Conv2d(4, 4, 3)
        )
        report = verify_model(model, input_shape=(3, 6, 6))
        assert "V008" in report.rules()

    def test_unknown_module_warns_v010(self):
        class Mystery(Module):
            def forward(self, x):
                return x

        report = verify_model(Sequential(Mystery()), input_shape=TINY_SHAPE)
        assert "V010" in report.rules()
        assert not report.has_errors


# --------------------------------------------------------------------------- #
# Checkpoint verification
# --------------------------------------------------------------------------- #
class TestCheckpointVerification:
    def test_roundtrip_clean(self, tmp_path):
        model = resnet8(num_classes=4)
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        report = verify_checkpoint(
            load_state(path), resnet8(num_classes=4), input_shape=TINY_SHAPE
        )
        assert report.is_clean, report.format(verbose=True)

    def test_nonfinite_array_flagged_c002(self, tmp_path):
        model = resnet8(num_classes=4)
        model.conv1.weight.data[:] = np.inf
        path = str(tmp_path / "bad.npz")
        save_model(model, path)
        report = verify_checkpoint(load_state(path))
        assert "C002" in report.rules()

    def test_structural_mismatch_flagged_c001(self, tmp_path):
        model = resnet8(num_classes=4)
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        report = verify_checkpoint(
            load_state(path), vgg8_tiny(num_classes=4), input_shape=TINY_SHAPE
        )
        assert "C001" in report.rules()

    def test_empty_checkpoint_flagged_c001(self):
        assert "C001" in verify_checkpoint({}).rules()


# --------------------------------------------------------------------------- #
# Scheme linter
# --------------------------------------------------------------------------- #
class TestSchemeLinter:
    def test_empty_scheme_is_clean(self):
        assert lint_scheme(CompressionScheme()).is_clean

    def test_grid_scheme_is_clean(self, space):
        scheme = _scheme(space[0], space[100])
        report = lint_scheme(scheme)
        assert not report.has_errors, report.format(verbose=True)

    def test_duplicate_quantization_rejected_l009(self):
        c7 = _strategy("C7")
        report = lint_scheme(_scheme(c7, c7))
        assert "L009" in report.rules()
        assert report.has_errors

    def test_too_long_scheme_rejected_l006(self):
        steps = tuple(_strategy("C4") for _ in range(6))
        assert "L006" in lint_scheme(CompressionScheme(steps)).rules()

    def test_over_unity_compression_rejected_l007(self):
        scheme = _scheme(_strategy("C2", HP2=0.6), _strategy("C3", HP2=0.6))
        report = lint_scheme(scheme)
        assert "L007" in report.rules()
        assert report.has_errors

    def test_off_grid_value_warns_l004(self):
        report = lint_scheme(_scheme(_strategy("C2", HP2=0.33)))
        assert "L004" in report.rules()
        assert not report.has_errors  # grid baselines pin HP2 off-grid

    def test_out_of_domain_value_rejected_l005(self):
        report = lint_scheme(_scheme(_strategy("C2", HP2=1.5)))
        assert "L005" in report.rules()
        assert report.has_errors

    def test_missing_hp_rejected_l003(self):
        broken = CompressionStrategy(method_label="C2", hp_items=(("HP1", 0.2),))
        assert "L003" in lint_scheme(_scheme(broken)).rules()

    def test_unknown_method_rejected_l001(self):
        broken = CompressionStrategy(method_label="C99", hp_items=())
        assert "L001" in lint_scheme(_scheme(broken)).rules()

    def test_structural_after_quantization_warns_l011(self):
        report = lint_scheme(_scheme(_strategy("C7"), _strategy("C4")))
        assert "L011" in report.rules()

    def test_repeated_strategy_warns_l010(self):
        c4 = _strategy("C4")
        assert "L010" in lint_scheme(_scheme(c4, c4)).rules()


# --------------------------------------------------------------------------- #
# Evaluator integration: rejection before cost
# --------------------------------------------------------------------------- #
class _NeverEvaluates(SchemeEvaluator):
    def _evaluate(self, scheme):
        raise AssertionError("evaluator charged cost for a doomed scheme")


class TestEvaluatorLintIntegration:
    def test_rejects_before_any_cost(self):
        evaluator = _NeverEvaluates(task=None)
        c7 = _strategy("C7")
        with pytest.raises(SchemeRejected) as excinfo:
            evaluator.evaluate(_scheme(c7, c7))
        assert evaluator.rejected_count == 1
        assert evaluator.total_cost == 0.0
        assert evaluator.evaluation_count == 0
        assert "L009" in excinfo.value.report.rules()
        assert excinfo.value.scheme.identifier in evaluator.rejected

    def test_lint_disabled_skips_rejection(self):
        evaluator = _NeverEvaluates(task=None, lint_schemes=False)
        c7 = _strategy("C7")
        with pytest.raises(AssertionError):
            evaluator.evaluate(_scheme(c7, c7))
        assert evaluator.rejected_count == 0


# --------------------------------------------------------------------------- #
# Surgery hardening + self-verification
# --------------------------------------------------------------------------- #
class TestSurgeryGuards:
    def test_shrink_primitives_reject_empty_keep(self):
        model = resnet8(num_classes=4)
        empty = np.array([], dtype=np.int64)
        with pytest.raises(SurgeryError):
            shrink_output(model.conv1, empty)
        with pytest.raises(SurgeryError):
            shrink_input(model.classifier, empty)
        with pytest.raises(SurgeryError):
            shrink_bn(model.bn1, empty)

    def test_check_unit_catches_partial_edit(self):
        model = resnet8(num_classes=4)
        unit = model.pruning_units()[0]
        shrink_output(unit.producer, np.arange(unit.out_channels - 2))
        with pytest.raises(SurgeryError):
            check_unit(unit)

    def test_self_verifying_surgery_passes_on_correct_prune(self):
        model = resnet8(num_classes=4)
        with self_verifying_surgery():
            unit = model.pruning_units()[0]
            prune_unit(unit, np.arange(unit.out_channels - 2))
        assert_valid(model, input_shape=TINY_SHAPE)

    def test_self_verifying_surgery_catches_broken_consumer(self):
        model = resnet8(num_classes=4)
        unit = model.pruning_units()[0]
        consumer = unit.consumers[0]
        consumer.shrink_input_channels = lambda keep: None  # buggy no-op rewiring
        with self_verifying_surgery():
            with pytest.raises(SurgeryError):
                prune_unit(unit, np.arange(unit.out_channels - 2))


# --------------------------------------------------------------------------- #
# Anomaly mode
# --------------------------------------------------------------------------- #
class TestAnomalyMode:
    def test_forward_nonfinite_raises_with_op_name(self):
        with detect_anomaly():
            with pytest.raises(AnomalyError) as excinfo:
                Tensor(np.array([0.0]), requires_grad=True).log()
        assert excinfo.value.op == "log"
        assert excinfo.value.phase == "forward"

    def test_backward_nonfinite_raises_with_op_name(self):
        with detect_anomaly():
            t = Tensor(np.array([0.0]), requires_grad=True)
            out = t.sqrt()  # finite forward, 1/(2*sqrt(0)) backward
            with pytest.raises(AnomalyError) as excinfo:
                out.backward()
        assert excinfo.value.op == "sqrt"
        assert excinfo.value.phase == "backward"

    def test_off_by_default(self):
        assert not anomaly_enabled()
        out = Tensor(np.array([0.0]), requires_grad=True).log()
        assert np.isneginf(out.data[0])  # silently propagates without the mode

    def test_context_restores_state(self):
        with detect_anomaly():
            assert anomaly_enabled()
        assert not anomaly_enabled()

    def test_trainer_flag_clean_run(self, tiny_data):
        train, _ = tiny_data
        model = Sequential(Flatten(), Linear(192, 4))
        trainer = Trainer(lr=0.05, batch_size=32, seed=0, detect_anomaly=True)
        report = trainer.fit(model, train, epochs=0.2)
        assert np.isfinite(report.final_loss)

    def test_trainer_flag_catches_poisoned_weight(self, tiny_data):
        train, _ = tiny_data
        model = Sequential(Flatten(), Linear(192, 4))
        model._modules["1"].weight.data[0, 0] = np.nan
        trainer = Trainer(lr=0.05, batch_size=32, seed=0, detect_anomaly=True)
        with pytest.raises(AnomalyError):
            trainer.fit(model, train, epochs=0.2)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestAnalyzeCLI:
    def test_all_models_clean(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--all-models"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        for name in available_models():
            assert name in out

    def test_single_model(self, capsys):
        from repro.cli import main

        assert main(["analyze", "resnet8"]) == 0
        assert "resnet8: clean" in capsys.readouterr().out

    def test_checkpoint_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "ckpt.npz")
        save_model(create_model("resnet8"), path)
        assert main(["analyze", "resnet8", "--checkpoint", path]) == 0
        assert "clean" in capsys.readouterr().out

    def test_corrupted_checkpoint_fails(self, tmp_path, capsys):
        from repro.cli import main

        model = create_model("resnet8")
        model.conv1.weight.data[:] = np.nan
        path = str(tmp_path / "bad.npz")
        save_model(model, path)
        assert main(["analyze", "--checkpoint", path]) == 1
        assert "C002" in capsys.readouterr().out

    def test_scheme_lint_failure(self, capsys):
        from repro.cli import main

        dup = "C7[HP1=0.1,HP17=5,HP18=0.5] -> C7[HP1=0.1,HP17=5,HP18=0.5]"
        assert main(["analyze", "--scheme", dup]) == 1
        assert "L009" in capsys.readouterr().out

    def test_no_target_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["analyze"]) == 2

    def test_strict_escalates_warnings(self, capsys):
        from repro.cli import main

        # An off-grid HP2 value cannot be produced via --scheme (the parser is
        # strict), so exercise --strict through a model with an inflated basis
        # is not CLI-reachable either; instead check strict passes on clean.
        assert main(["analyze", "resnet8", "--strict"]) == 0


# --------------------------------------------------------------------------- #
# Diagnostics plumbing
# --------------------------------------------------------------------------- #
class TestDiagnostics:
    def test_report_severity_ordering(self):
        report = Report(subject="x")
        assert report.status is Severity.OK
        report.warn("T001", "a", "suspicious")
        assert report.status is Severity.WARNING
        report.error("T002", "b", "broken", expected=1, actual=2)
        assert report.status is Severity.ERROR
        assert report.rules() == {"T001", "T002"}
        assert "expected 1, got 2" in report.by_rule("T002")[0].format()

    def test_format_hides_notes_unless_verbose(self):
        report = Report(subject="x")
        report.note("T000", "", "fine")
        assert "T000" not in report.format()
        assert "T000" in report.format(verbose=True)
