"""Tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.nn.metrics import (
    confusion_matrix,
    evaluate_metrics,
    per_class_accuracy,
    top_k_accuracy,
)


class TestTopK:
    def test_k1_matches_argmax(self, rng):
        logits = rng.normal(size=(20, 5))
        targets = rng.integers(0, 5, 20)
        expected = float((logits.argmax(-1) == targets).mean())
        assert top_k_accuracy(logits, targets, k=1) == pytest.approx(expected)

    def test_k_equal_classes_is_one(self, rng):
        logits = rng.normal(size=(10, 4))
        targets = rng.integers(0, 4, 10)
        assert top_k_accuracy(logits, targets, k=4) == 1.0

    def test_k_clamped(self, rng):
        logits = rng.normal(size=(5, 3))
        targets = rng.integers(0, 3, 5)
        assert top_k_accuracy(logits, targets, k=10) == 1.0

    def test_monotone_in_k(self, rng):
        logits = rng.normal(size=(50, 10))
        targets = rng.integers(0, 10, 50)
        values = [top_k_accuracy(logits, targets, k) for k in (1, 3, 5, 10)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))


class TestConfusion:
    def test_counts(self):
        predictions = np.array([0, 1, 1, 2])
        targets = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(predictions, targets, 3)
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1
        assert matrix[2, 1] == 1
        assert matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_per_class_accuracy(self):
        matrix = np.array([[3, 1], [0, 4]])
        acc = per_class_accuracy(matrix)
        np.testing.assert_allclose(acc, [0.75, 1.0])

    def test_unseen_class_nan(self):
        matrix = np.array([[2, 0], [0, 0]])
        acc = per_class_accuracy(matrix)
        assert acc[0] == 1.0
        assert np.isnan(acc[1])


class TestEvaluateMetrics:
    def test_full_pass(self, tiny_data, trained_resnet8):
        _, val = tiny_data
        metrics = evaluate_metrics(trained_resnet8, val, top_k=2)
        assert 0 <= metrics["accuracy"] <= 1
        assert metrics["accuracy"] <= metrics["top2_accuracy"] + 1e-12
        assert metrics["confusion_matrix"].sum() == len(val)
        assert metrics["per_class_accuracy"].shape == (val.num_classes,)

    def test_consistent_with_evaluate_accuracy(self, tiny_data, trained_resnet8):
        from repro.nn import evaluate_accuracy

        _, val = tiny_data
        metrics = evaluate_metrics(trained_resnet8, val)
        assert metrics["accuracy"] == pytest.approx(
            evaluate_accuracy(trained_resnet8, val)
        )

    def test_restores_training_mode(self, tiny_data, trained_resnet8):
        _, val = tiny_data
        trained_resnet8.train()
        evaluate_metrics(trained_resnet8, val)
        assert trained_resnet8.training
