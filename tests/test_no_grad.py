"""Semantics of the grad-free inference mode (repro.nn.no_grad).

The fast path must be an *optimisation only*: forward values are bit-identical
with and without the tape, the mode nests and survives exceptions, and calling
``backward()`` inside it fails loudly instead of silently returning no
gradients.
"""

import numpy as np
import pytest

from repro.models import resnet8
from repro.nn import Tensor, is_grad_enabled, no_grad
from repro.nn import functional as F


class TestForwardEquivalence:
    def test_model_forward_bit_identical(self, rng):
        model = resnet8(num_classes=4).eval()
        x = rng.normal(size=(3, 3, 8, 8))
        tape = model(Tensor(x)).data
        with no_grad():
            tapeless = model(Tensor(x)).data
        np.testing.assert_array_equal(tape, tapeless)

    def test_fused_ops_bit_identical(self, rng):
        x = Tensor(rng.normal(size=(2, 4, 6, 6)))
        w = Tensor(rng.normal(size=(4, 4, 3, 3)))
        skip = Tensor(rng.normal(size=(2, 4, 6, 6)))
        tape = F.add_relu(F.conv2d(x, w, stride=1, padding=1), skip).data
        with no_grad():
            tapeless = F.add_relu(F.conv2d(x, w, stride=1, padding=1), skip).data
        np.testing.assert_array_equal(tape, tapeless)

    def test_results_do_not_require_grad(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        with no_grad():
            out = (x * 2.0).sum()
        assert not out.requires_grad
        assert out._parents == ()


class TestModeManagement:
    def test_flag_restored(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nesting(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            # Inner exit must not prematurely re-enable gradients.
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_exception_safety(self):
        with pytest.raises(RuntimeError, match="boom"):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_inference_flag_mirrors_mode(self):
        assert not Tensor.inference
        with no_grad():
            assert Tensor.inference
        assert not Tensor.inference

    def test_mode_is_thread_local(self, rng):
        """One thread's no_grad must not stop another thread from training.

        Regression: the grad flag used to be a process-global, so a serve job
        doing inference on its own thread silently disabled tape recording for
        every concurrently-training job (``backward()`` then raised "tape was
        never recorded").
        """
        import threading

        entered = threading.Event()
        release = threading.Event()

        def hold_no_grad():
            with no_grad():
                entered.set()
                release.wait(timeout=30)

        worker = threading.Thread(target=hold_no_grad)
        worker.start()
        try:
            assert entered.wait(timeout=30)
            # The other thread is inside no_grad right now; this one trains.
            assert is_grad_enabled()
            x = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
            (x * x).sum().backward()
            np.testing.assert_allclose(x.grad, 2.0 * x.data, rtol=1e-6)
        finally:
            release.set()
            worker.join(timeout=30)
        assert is_grad_enabled()


class TestBackwardGuard:
    def test_backward_raises_inside_no_grad(self, rng):
        x = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        with no_grad():
            loss = (x * x).sum()
            with pytest.raises(RuntimeError, match="no_grad"):
                loss.backward()

    def test_training_unaffected_after_inference(self, rng):
        # Gradients computed after leaving no_grad must be intact.
        x = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        with no_grad():
            (x * x).sum()
        loss = (x * x).sum()
        loss.backward()
        np.testing.assert_allclose(x.grad, 2.0 * x.data, rtol=1e-6)
