"""Repository-convention linter (repro.analysis.repolint)."""

import ast
import os
import textwrap

from repro.analysis import repolint


def parse(source):
    return ast.parse(textwrap.dedent(source))


class TestR001BuiltinHash:
    def test_flags_builtin_hash_call(self):
        tree = parse("key = hash(scheme.identifier)")
        violations = repolint.check_hash_calls(tree, "x.py")
        assert [v.rule for v in violations] == ["R001"]

    def test_allows_stable_hash_and_dunder(self):
        tree = parse(
            """
            from repro.core.evaluator import stable_hash

            key = stable_hash(text)

            class Thing:
                def __hash__(self):
                    return 0
            """
        )
        assert repolint.check_hash_calls(tree, "x.py") == []

    def test_allows_method_named_hash(self):
        tree = parse("digest = hasher.hash(data)")
        assert repolint.check_hash_calls(tree, "x.py") == []


class TestR002Float64:
    def test_flags_np_float64(self):
        tree = parse("out = x.astype(np.float64)")
        assert [v.rule for v in repolint.check_float64(tree, "x.py")] == ["R002"]

    def test_flags_dtype_string(self):
        tree = parse("out = np.zeros(4, dtype='float64')")
        assert [v.rule for v in repolint.check_float64(tree, "x.py")] == ["R002"]

    def test_allows_float32(self):
        tree = parse("out = np.zeros(4, dtype=np.float32)")
        assert repolint.check_float64(tree, "x.py") == []


class TestR003FlopRules:
    def test_registered_ops_extracted(self):
        tree = parse(
            """
            def conv2d(x):
                return _register_op(out, "conv2d")

            def exotic(x):
                return _register_op(out, "warp_shuffle")
            """
        )
        names = [c.value for c in repolint.registered_op_names(tree)]
        assert names == ["conv2d", "warp_shuffle"]
        violations = repolint.check_flop_rules(tree, "functional.py")
        assert [v.rule for v in violations] == ["R003"]
        assert "warp_shuffle" in violations[0].message

    def test_every_runtime_op_has_a_rule(self):
        """The real functional.py must register only ops the cost model knows."""
        import repro.nn.functional as functional

        path = functional.__file__
        assert repolint.lint_path(path) == []


class TestR004SolverRegistration:
    def test_flags_unregistered_solver_subclass(self):
        tree = parse(
            """
            class Rogue(Solver):
                def propose(self, state):
                    return []
            """
        )
        violations = repolint.check_solver_registration(tree, "x.py")
        assert [v.rule for v in violations] == ["R004"]
        assert "Rogue" in violations[0].message

    def test_flags_attribute_base(self):
        tree = parse(
            """
            class Rogue(solver.Solver):
                pass
            """
        )
        assert [
            v.rule for v in repolint.check_solver_registration(tree, "x.py")
        ] == ["R004"]

    def test_allows_registered_solver(self):
        tree = parse(
            """
            @register_solver("mine", label="Mine")
            class Mine(Solver):
                def propose(self, state):
                    return []
            """
        )
        assert repolint.check_solver_registration(tree, "x.py") == []

    def test_allows_attribute_decorator_and_unrelated_classes(self):
        tree = parse(
            """
            @solver.register_solver("mine")
            class Mine(core.Solver):
                pass

            class NotASolver(SearchStrategy):
                pass

            class Solver:  # the base class itself has no Solver base
                pass
            """
        )
        assert repolint.check_solver_registration(tree, "x.py") == []

    def test_indirect_subclasses_are_exempt(self):
        """Refining a registered solver inherits its registration."""
        tree = parse(
            """
            class Tweaked(RandomSolver):
                pass
            """
        )
        assert repolint.check_solver_registration(tree, "x.py") == []


class TestR006WorkspaceAllocations:
    def test_flags_allocators_in_kernels(self):
        tree = parse(
            """
            def conv2d(x, padding):
                xp = np.pad(x, padding)
                def backward(grad):
                    dx = np.zeros_like(xp)
                return xp

            def _col2im(dcols, shape):
                return np.zeros(shape, dtype=dcols.dtype)
            """
        )
        violations = repolint.check_workspace_allocations(tree, "functional.py")
        assert [v.rule for v in violations] == ["R006"] * 3
        assert "np.pad" in violations[0].message
        assert "workspace arena" in violations[0].message

    def test_nested_backward_closures_are_covered(self):
        tree = parse(
            """
            def avg_pool2d(x):
                def backward(grad):
                    return np.empty(grad.shape)
                return backward
            """
        )
        assert [
            v.rule for v in repolint.check_workspace_allocations(tree, "x.py")
        ] == ["R006"]

    def test_allows_arena_and_owned_helpers(self):
        tree = parse(
            """
            def conv2d(x):
                ws = get_workspace()
                cols = ws.request(("k", "cols"), (4, 9), x.dtype)
                dx = owned_zeros(x.shape, x.dtype)
                flat = np.ascontiguousarray(cols)
                return flat
            """
        )
        assert repolint.check_workspace_allocations(tree, "x.py") == []

    def test_other_functions_are_exempt(self):
        """max_pool2d etc. are not arena-managed; allocations are fine."""
        tree = parse(
            """
            def max_pool2d(x):
                return np.zeros_like(x)

            def helper(shape):
                return np.empty(shape)
            """
        )
        assert repolint.check_workspace_allocations(tree, "x.py") == []

    def test_real_functional_is_clean(self):
        import repro.nn.functional as functional

        tree = ast.parse(open(functional.__file__).read())
        assert repolint.check_workspace_allocations(tree, functional.__file__) == []


class TestRunner:
    def test_repo_is_clean(self):
        root = os.path.join(
            os.path.dirname(repolint.__file__), os.pardir
        )  # src/repro
        assert repolint.run_repolint(os.path.normpath(root)) == []

    def test_main_reports_violations(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("value = hash('a')\n")
        assert repolint.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out

    def test_main_clean_and_missing_dir(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("value = 1\n")
        assert repolint.main([str(tmp_path)]) == 0
        assert repolint.main([str(tmp_path / "nope")]) == 2

    def test_syntax_error_is_reported(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        violations = repolint.run_repolint(str(tmp_path))
        assert [v.rule for v in violations] == ["R000"]
        assert "syntax error" in violations[0].format()
