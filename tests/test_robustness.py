"""Failure-injection and edge-case robustness tests."""


import numpy as np
import pytest

from repro.compression import METHODS, ExecutionContext
from repro.compression.surgery import filter_l2_norms, prune_by_scores
from repro.core.evaluator import SurrogateEvaluator
from repro.data.tasks import EXP1, transfer_task
from repro.models import resnet8, resnet20, vgg8_tiny
from repro.nn import Tensor
from repro.space import START, StrategySpace

HP = {"HP1": 0.1, "HP2": 0.3, "HP4": 3, "HP5": 0.5, "HP6": 0.9, "HP7": 0.4,
      "HP8": "l2_weight", "HP9": 0.1, "HP10": 3, "HP11": "P1", "HP12": "l1norm",
      "HP13": 0.3, "HP14": 1, "HP15": 1.0, "HP16": "MSE"}


class TestRepeatedCompression:
    @pytest.mark.parametrize("label", ["C1", "C2", "C3", "C4"])
    def test_method_applied_until_floor(self, label):
        """Repeated application must saturate gracefully, never crash or
        produce an unusable model."""
        model = vgg8_tiny(num_classes=4)
        original = model.num_parameters()
        ctx = ExecutionContext(original_params=original, train_enabled=False)
        for _ in range(6):
            METHODS[label].apply(model, dict(HP), ctx)
        # Still a functional network with at least one channel per unit.
        out = model(Tensor(np.zeros((1, 3, 8, 8))))
        assert np.isfinite(out.data).all()
        for unit in model.pruning_units():
            assert unit.out_channels >= 1

    def test_budget_larger_than_prunable_mass(self):
        model = resnet8(num_classes=4)
        total = model.num_parameters()
        scores = {u.name: filter_l2_norms(u) for u in model.pruning_units()}
        removed = prune_by_scores(model, scores, param_budget=total * 2)
        assert 0 < removed < total
        out = model(Tensor(np.zeros((1, 3, 8, 8))))
        assert np.isfinite(out.data).all()

    def test_factorized_then_pruned(self):
        """HOS factorizes convs; a later NS step must still work around the
        factorized layers."""
        model = vgg8_tiny(num_classes=4)
        ctx = ExecutionContext(
            original_params=model.num_parameters(), train_enabled=False
        )
        METHODS["C5"].apply(model, dict(HP), ctx)
        before = model.num_parameters()
        METHODS["C3"].apply(model, {**HP, "HP2": 0.1}, ctx)
        assert model.num_parameters() < before
        out = model(Tensor(np.zeros((1, 3, 8, 8))))
        assert np.isfinite(out.data).all()

    def test_lfb_twice_no_double_factorization_blowup(self):
        model = vgg8_tiny(num_classes=4)
        ctx = ExecutionContext(
            original_params=model.num_parameters(), train_enabled=False
        )
        METHODS["C6"].apply(model, dict(HP), ctx)
        second = METHODS["C6"].apply(model, {**HP, "HP2": 0.1}, ctx)
        # The second pass may find little left to factorize, but must not
        # *grow* the model.
        assert second.params_after <= second.params_before
        out = model(Tensor(np.zeros((1, 3, 8, 8))))
        assert np.isfinite(out.data).all()


class TestEvaluatorEdgeCases:
    def _evaluator(self, cache_size=2, seed=0):
        task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
        return SurrogateEvaluator(
            lambda: resnet20(num_classes=10), "resnet20", "cifar10", task,
            seed=seed, model_cache_size=cache_size,
        )

    def test_cache_eviction_keeps_correctness(self):
        """With a 2-entry model LRU, evaluating many schemes still gives the
        same results as with a huge cache (prefixes are re-executed)."""
        space = StrategySpace(method_labels=["C3"])
        schemes = []
        scheme = START
        for s in space.of_method("C3")[:4]:
            scheme = scheme.extend(s)
            schemes.append(scheme)

        small = self._evaluator(cache_size=2)
        large = self._evaluator(cache_size=64)
        for scheme in schemes + schemes[::-1]:
            a = small.evaluate(scheme)
            b = large.evaluate(scheme)
            assert a.params == b.params
            assert a.accuracy == pytest.approx(b.accuracy, abs=1e-12)

    def test_deep_scheme_of_max_length(self):
        space = StrategySpace(method_labels=["C3", "C4"])
        scheme = START
        rng = np.random.default_rng(0)
        while scheme.length < 5:
            candidate = space[int(rng.integers(len(space)))]
            if scheme.total_param_step + candidate.param_step <= 0.85:
                scheme = scheme.extend(candidate)
        result = self._evaluator().evaluate(scheme)
        assert result.pr > 0
        assert len(result.step_reports) == 5

    def test_accuracy_never_below_floor(self):
        """Even absurdly aggressive schemes can't dip under random-guess."""
        space = StrategySpace(method_labels=["C1"])
        worst = max(space, key=lambda s: s.param_step)
        evaluator = self._evaluator()
        scheme = START.extend(worst).extend(worst)
        result = evaluator.evaluate(scheme)
        assert result.accuracy >= 0.10 - 1e-9  # 10 classes


class TestSearchDeterminism:
    def test_random_search_reproducible(self):
        from repro.baselines import RandomSearch

        space = StrategySpace(method_labels=["C3", "C4"])

        def run(seed):
            task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
            ev = SurrogateEvaluator(
                lambda: resnet20(num_classes=10), "resnet20", "cifar10", task, seed=0
            )
            return RandomSearch(ev, space, gamma=0.2, budget_hours=0.8, seed=seed).run()

        a = run(11)
        b = run(11)
        assert [r.scheme.identifier for r in a.all_results] == [
            r.scheme.identifier for r in b.all_results
        ]
        c = run(12)
        assert [r.scheme.identifier for r in a.all_results] != [
            r.scheme.identifier for r in c.all_results
        ]
