"""Tests for model checkpointing."""

import os

import numpy as np
import pytest

from repro.compression import METHODS, ExecutionContext
from repro.models import resnet8, vgg8_tiny
from repro.nn import Tensor, load_model, load_state, save_model


class TestSaveLoad:
    def test_roundtrip_parameters(self, tmp_path):
        model = resnet8(num_classes=4, seed=1)
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        other = resnet8(num_classes=4, seed=2)
        load_model(other, path)
        for (_, a), (_, b) in zip(model.named_parameters(), other.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_roundtrip_buffers(self, tmp_path):
        model = vgg8_tiny(num_classes=4)
        for _, buf in model.named_buffers():
            buf += 3.0
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        other = vgg8_tiny(num_classes=4, seed=5)
        load_model(other, path)
        for (_, a), (_, b) in zip(model.named_buffers(), other.named_buffers()):
            np.testing.assert_array_equal(a, b)

    def test_identical_forward_after_load(self, tmp_path, rng):
        model = vgg8_tiny(num_classes=4, seed=3)
        model.eval()
        x = rng.normal(size=(2, 3, 8, 8))
        expected = model(Tensor(x)).data
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        other = vgg8_tiny(num_classes=4, seed=7)
        load_model(other, path)
        other.eval()
        np.testing.assert_allclose(other(Tensor(x)).data, expected)

    def test_load_state_returns_plain_dict(self, tmp_path):
        model = resnet8(num_classes=4)
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        state = load_state(path)
        assert set(state) == set(model.state_dict())

    def test_creates_directories(self, tmp_path):
        model = resnet8(num_classes=4)
        path = str(tmp_path / "deep" / "nested" / "model.npz")
        save_model(model, path)
        assert os.path.exists(path)

    def test_shape_mismatch_after_surgery_raises(self, tmp_path, tiny_data):
        """A checkpoint of the original model cannot load into a pruned one."""
        model = resnet8(num_classes=4)
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        ctx = ExecutionContext(
            original_params=model.num_parameters(), train_enabled=False
        )
        METHODS["C3"].apply(model, {"HP1": 0.1, "HP2": 0.2, "HP6": 0.9}, ctx)
        with pytest.raises(ValueError, match="shape mismatch"):
            load_model(model, path)

    def test_compressed_model_roundtrip(self, tmp_path):
        """Checkpoints of structurally compressed models work structure-to-
        structure (save after surgery, load into the same object)."""
        model = vgg8_tiny(num_classes=4)
        ctx = ExecutionContext(
            original_params=model.num_parameters(), train_enabled=False
        )
        METHODS["C3"].apply(model, {"HP1": 0.1, "HP2": 0.2, "HP6": 0.9}, ctx)
        path = str(tmp_path / "compressed.npz")
        save_model(model, path)
        for p in model.parameters():
            p.data = p.data * 0  # wreck the weights
        load_model(model, path)
        assert any(np.abs(p.data).sum() > 0 for p in model.parameters())
