"""Tests for progressive search, baselines and the AutoMC facade.

Searches run on the resnet20 surrogate with tiny budgets — enough to verify
mechanics (budget accounting, Pareto outputs, trajectories) quickly.
"""

import numpy as np
import pytest

from repro.baselines import EvolutionSearch, RLSearch, RandomSearch
from repro.core import AutoMC, build_variant
from repro.core.evaluator import SurrogateEvaluator
from repro.core.progressive import ProgressiveConfig, ProgressiveSearch
from repro.data.tasks import EXP1, transfer_task
from repro.knowledge.embedding import EmbeddingConfig, StrategyEmbeddings
from repro.models import resnet20
from repro.space import StrategySpace

BUDGET = 1.5  # simulated hours -> a handful of evaluations


@pytest.fixture(scope="module")
def small_space():
    return StrategySpace(method_labels=["C3", "C4"])


@pytest.fixture(scope="module")
def embeddings(small_space):
    rng = np.random.default_rng(0)
    return StrategyEmbeddings(
        table=rng.normal(0, 0.1, size=(len(small_space), 16)), space=small_space
    )


def make_evaluator(seed=0):
    task = transfer_task(EXP1, "resnet20", 0.27, 0.08, EXP1.model_accuracy)
    return SurrogateEvaluator(
        lambda: resnet20(num_classes=10), "resnet20", "cifar10", task, seed=seed
    )


class TestProgressiveSearch:
    def test_run_produces_results_within_budget(self, small_space, embeddings):
        searcher = ProgressiveSearch(
            make_evaluator(), small_space, embeddings,
            gamma=0.2, budget_hours=BUDGET,
            config=ProgressiveConfig(sample_size=3, evals_per_round=3,
                                     candidate_subsample=64),
        )
        result = searcher.run()
        assert result.evaluations > 1
        assert result.total_cost >= BUDGET  # stops only after budget spent
        assert result.trajectory
        assert result.front

    def test_pareto_respects_gamma(self, small_space, embeddings):
        searcher = ProgressiveSearch(
            make_evaluator(), small_space, embeddings,
            gamma=0.2, budget_hours=BUDGET,
            config=ProgressiveConfig(sample_size=3, evals_per_round=3,
                                     candidate_subsample=64),
        )
        result = searcher.run()
        for r in result.pareto:
            assert r.pr >= 0.2

    def test_trajectory_costs_monotone(self, small_space, embeddings):
        searcher = ProgressiveSearch(
            make_evaluator(), small_space, embeddings,
            gamma=0.2, budget_hours=BUDGET,
            config=ProgressiveConfig(sample_size=2, evals_per_round=2,
                                     candidate_subsample=64),
        )
        result = searcher.run()
        costs = [p.cost for p in result.trajectory]
        assert costs == sorted(costs)

    def test_fmo_gets_trained(self, small_space, embeddings):
        searcher = ProgressiveSearch(
            make_evaluator(), small_space, embeddings,
            gamma=0.2, budget_hours=BUDGET,
            config=ProgressiveConfig(sample_size=2, evals_per_round=2,
                                     candidate_subsample=64),
        )
        searcher.run()
        assert searcher.fmo.buffer
        assert searcher.fmo.loss_history

    def test_schemes_grow_progressively(self, small_space, embeddings):
        searcher = ProgressiveSearch(
            make_evaluator(), small_space, embeddings,
            gamma=0.2, budget_hours=2.5,
            config=ProgressiveConfig(sample_size=3, evals_per_round=3,
                                     candidate_subsample=64),
        )
        searcher.run()
        lengths = {r.scheme.length for r in searcher.evaluator.results.values()}
        assert max(lengths) >= 2  # extended beyond single strategies


class TestBaselines:
    @pytest.mark.parametrize("cls", [RandomSearch, EvolutionSearch, RLSearch])
    def test_baseline_runs_and_respects_budget(self, cls, small_space):
        searcher = cls(make_evaluator(), small_space, gamma=0.2, budget_hours=BUDGET, seed=1)
        result = searcher.run()
        assert result.evaluations >= 1
        assert result.algorithm == cls.name
        assert result.trajectory

    def test_random_schemes_within_length(self, small_space):
        searcher = RandomSearch(make_evaluator(), small_space, gamma=0.2,
                                budget_hours=BUDGET, max_length=3, seed=2)
        searcher.run()
        assert all(
            r.scheme.length <= 3
            for r in searcher.evaluator.results.values()
        )

    def test_evolution_population_evolves(self, small_space):
        searcher = EvolutionSearch(
            make_evaluator(), small_space, gamma=0.2, budget_hours=2.0,
            population_size=4, offspring_per_generation=3, seed=3,
        )
        result = searcher.run()
        assert result.evaluations > 4  # at least one generation beyond init

    def test_rl_controller_updates(self, small_space):
        searcher = RLSearch(make_evaluator(), small_space, gamma=0.2,
                            budget_hours=BUDGET, seed=4, batch_size=2)
        weights_before = searcher.controller.method_head.weight.data.copy()
        searcher.run()
        assert not np.allclose(weights_before, searcher.controller.method_head.weight.data)

    def test_summary_text(self, small_space):
        searcher = RandomSearch(make_evaluator(), small_space, gamma=0.2,
                                budget_hours=0.5, seed=5)
        result = searcher.run()
        assert "Random" in result.summary()


class TestAblationVariants:
    def test_all_variants_buildable(self):
        for variant in ("AutoMC-MultipleSource", "AutoMC-ProgressiveSearch"):
            searcher = build_variant(
                variant, make_evaluator(), gamma=0.2, budget_hours=0.5,
                embedding_rounds=1,
            )
            assert searcher.name == variant

    def test_multiple_source_restricts_space(self):
        searcher = build_variant(
            "AutoMC-MultipleSource", make_evaluator(), gamma=0.2,
            budget_hours=0.5, embedding_rounds=1,
        )
        assert set(s.method_label for s in searcher.space) == {"C2"}

    def test_unknown_variant_raises(self):
        with pytest.raises(KeyError):
            build_variant("AutoMC-Bogus", make_evaluator())


class TestFacade:
    def test_paper_scale_runs(self):
        automc = AutoMC.paper_scale(
            "resnet56", "cifar10", gamma=0.3, budget_hours=0.8,
            embedding_config=EmbeddingConfig(rounds=1, transr_epochs_per_round=1,
                                             nn_exp_epochs_per_round=3),
            progressive_config=ProgressiveConfig(sample_size=2, evals_per_round=2,
                                                 candidate_subsample=64),
        )
        result = automc.search()
        assert result.algorithm == "AutoMC"
        assert result.evaluations >= 1

    def test_unknown_paper_task_raises(self):
        with pytest.raises(KeyError):
            AutoMC.paper_scale("resnet18", "imagenet")

    def test_with_training_backend(self, tiny_data):
        from repro.models import resnet8

        train, val = tiny_data
        automc = AutoMC.with_training(
            lambda: resnet8(num_classes=4), train, val,
            gamma=0.1, budget_hours=0.4, pretrain_epochs=1,
            space=StrategySpace(method_labels=["C3"]),
            embedding_config=EmbeddingConfig(rounds=1, transr_epochs_per_round=1,
                                             nn_exp_epochs_per_round=2),
            progressive_config=ProgressiveConfig(sample_size=2, evals_per_round=2,
                                                 candidate_subsample=32),
        )
        result = automc.search()
        assert result.evaluations >= 1
