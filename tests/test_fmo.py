"""Tests for the F_mo multi-objective step evaluator."""

import numpy as np
import pytest

from repro.core.fmo import Fmo, FmoNetwork
from repro.knowledge.embedding import StrategyEmbeddings
from repro.space import START, StrategySpace


@pytest.fixture(scope="module")
def small_space():
    return StrategySpace(method_labels=["C3", "C4"])


@pytest.fixture(scope="module")
def embeddings(small_space):
    rng = np.random.default_rng(0)
    return StrategyEmbeddings(
        table=rng.normal(0, 0.1, size=(len(small_space), 16)), space=small_space
    )


@pytest.fixture()
def fmo(embeddings):
    return Fmo(embeddings, seed=0)


class TestEncoding:
    def test_empty_sequence_zeros(self, fmo):
        enc = fmo.encode_sequence(START)
        assert enc.shape == (32,)
        np.testing.assert_allclose(enc, 0.0)

    def test_sequence_encoding_mean_and_last(self, fmo, small_space, embeddings):
        scheme = START.extend(small_space[0]).extend(small_space[5])
        enc = fmo.encode_sequence(scheme)
        expected_mean = (embeddings.table[0] + embeddings.table[5]) / 2
        np.testing.assert_allclose(enc[:16], expected_mean)
        np.testing.assert_allclose(enc[16:], embeddings.table[5])

    def test_state_features(self):
        state = Fmo.state_features(0.95, 0.7, 2, 0.3, max_length=5)
        np.testing.assert_allclose(state, [0.95, 0.7, 0.4, 0.3])

    def test_build_features_shape(self, fmo, small_space):
        state = Fmo.state_features(1.0, 1.0, 0, 0.0)
        feats = fmo.build_features(START, state, np.array([0, 1, 2]))
        assert feats.shape == (3, 3 * 16 + 4)


class TestPrediction:
    def test_predict_shape(self, fmo, small_space):
        state = Fmo.state_features(1.0, 1.0, 0, 0.0)
        pred = fmo.predict(START, state, np.arange(10))
        assert pred.shape == (10, 2)
        assert np.isfinite(pred).all()

    def test_training_fits_observations(self, fmo, small_space):
        """F_mo must learn a simple pattern: candidate i -> PR_step = HP2_i."""
        state = Fmo.state_features(1.0, 1.0, 0, 0.0)
        for _ in range(3):  # repeated observations
            for i in range(0, len(small_space), 7):
                strategy = small_space[i]
                fmo.observe(START, state, i, ar_step=-strategy.param_step / 4,
                            pr_step=strategy.param_step)
        loss = fmo.train(epochs=80)
        # Targets are AR-scaled internally (AR_TARGET_SCALE), so the absolute
        # loss is larger than the raw-unit intuition; correlation is the
        # meaningful check below.
        assert loss < 0.05
        pred = fmo.predict(START, state, np.arange(0, len(small_space), 7))
        targets = np.array(
            [small_space[i].param_step for i in range(0, len(small_space), 7)]
        )
        correlation = np.corrcoef(pred[:, 1], targets)[0, 1]
        assert correlation > 0.8

    def test_train_empty_buffer_is_nan(self, fmo):
        assert np.isnan(fmo.train())

    def test_loss_history_recorded(self, fmo, small_space):
        state = Fmo.state_features(1.0, 1.0, 0, 0.0)
        fmo.observe(START, state, 0, 0.0, 0.1)
        fmo.train(epochs=2)
        assert len(fmo.loss_history) == 1


class TestNetwork:
    def test_forward_shape(self):
        net = FmoNetwork(embedding_dim=8)
        from repro.nn import Tensor

        out = net(Tensor(np.zeros((5, 3 * 8 + 4))))
        assert out.shape == (5, 2)
