"""Shared fixtures.

Session-scoped fixtures amortise the expensive setups (strategy space,
knowledge graph, pre-trained tiny models) across the whole suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import tiny_dataset
from repro.models import resnet8, vgg8_tiny
from repro.nn import Trainer
from repro.space import StrategySpace


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="regenerate the checked-in golden files instead of comparing "
             "against them (review the diff before committing!)",
    )


@pytest.fixture(scope="session")
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")


@pytest.fixture(scope="module")
def float64_gradcheck():
    """Run a whole module in float64 (``pytestmark = pytest.mark.usefixtures``).

    Central-difference gradient checks need more precision than the float32
    training default; module scope keeps hypothesis's function-scoped-fixture
    health check quiet.
    """
    from repro.nn import default_dtype

    with default_dtype(np.float64):
        yield


@pytest.fixture(scope="session")
def space() -> StrategySpace:
    return StrategySpace()


@pytest.fixture(scope="session")
def tiny_data():
    data = tiny_dataset(num_classes=4, num_samples=120, image_size=8, seed=0)
    train, val = data.split(0.75, seed=1)
    return train, val


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def trained_resnet8(tiny_data):
    """A small pre-trained ResNet shared (read-only!) across tests.

    Tests that mutate models must deepcopy this fixture.
    """
    train, _ = tiny_data
    model = resnet8(num_classes=4)
    Trainer(lr=0.05, batch_size=32, seed=0).fit(model, train, epochs=1)
    return model


@pytest.fixture(scope="session")
def trained_vgg8(tiny_data):
    train, _ = tiny_data
    model = vgg8_tiny(num_classes=4)
    Trainer(lr=0.05, batch_size=32, seed=0).fit(model, train, epochs=1)
    return model


def numeric_gradient(f, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar f wrt ``array`` (in place probing)."""
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        hi = f()
        flat[i] = original - eps
        lo = f()
        flat[i] = original
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad
